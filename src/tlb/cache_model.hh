/**
 * @file
 * Multi-level set-associative data cache model.
 *
 * Captures the on-chip locality effects that accompany the paper's
 * reordering optimization (DBG improves both cache and TLB behaviour,
 * §5.2 "any other improvement ... is present in the baseline and with
 * our page management strategy"). Physically indexed; LRU per set.
 */

#ifndef GPSM_TLB_CACHE_MODEL_HH
#define GPSM_TLB_CACHE_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/stats.hh"
#include "util/units.hh"

namespace gpsm::tlb
{

/** Geometry and latency of one cache level. */
struct CacheLevelConfig
{
    std::string name = "cache";
    std::uint64_t bytes = 32 * 1024;
    std::uint32_t ways = 8;
    std::uint32_t lineBytes = 64;
    std::uint32_t hitCycles = 4;
};

/**
 * Inclusive multi-level cache. access() probes L1..Ln in order and
 * returns the cycles of the first hit (or the memory latency on a full
 * miss), filling all levels on the way back.
 */
class CacheModel
{
  public:
    /**
     * @param levels L1 first.
     * @param memory_cycles Latency charged on a full miss.
     */
    CacheModel(std::vector<CacheLevelConfig> levels,
               std::uint32_t memory_cycles);

    /**
     * Probe with a physical address; @return latency in cycles.
     * @p miss_extra_cycles is added only on a full miss — the hook
     * through which the remote-DRAM tier charges its interconnect
     * penalty (a hit at any level never pays it, since the line is
     * already on-chip).
     */
    std::uint32_t access(Addr paddr,
                         std::uint32_t miss_extra_cycles = 0);

    /**
     * Probe @p n strided addresses starting at @p start and @return
     * the summed latency. Counter and LRU state are exactly those of
     * n access() calls (asserted by tests/test_cache_model): after a
     * line's first probe, the following elements of the same L1 line
     * are guaranteed L1 hits — nothing intervenes within the run — so
     * they are accounted in one step per line instead of one set scan
     * per element. @p miss_extra_cycles applies per full miss, i.e. to
     * leading line probes only (trailing same-line elements are L1
     * hits by construction).
     */
    std::uint64_t accessRun(Addr start, std::size_t stride,
                            std::uint64_t n,
                            std::uint32_t miss_extra_cycles = 0);

    /** Drop all lines (used between experiment phases). */
    void flushAll();

    void registerStats(StatSet &stats, const std::string &prefix) const;

    size_t levels() const { return lvls.size(); }
    std::uint64_t hitsAt(size_t level) const
    {
        return lvls[level].hits.value();
    }
    std::uint64_t memoryAccesses() const { return misses.value(); }

    Counter accesses;
    Counter misses; ///< accesses that reached memory

  private:
    /**
     * stamp == 0 marks the line invalid: stampCounter is never reset
     * (flushAll only zeroes line stamps), so a resident line always
     * carries a nonzero, set-unique stamp. Folding validity into the
     * stamp keeps the line at 16 bytes — the set scan is the hottest
     * loop in the simulator.
     */
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t stamp = 0;
    };

    struct Level
    {
        CacheLevelConfig cfg;
        std::uint32_t sets = 0;
        unsigned lineShift = 0;
        std::vector<Line> arr;
        mutable Counter hits;

        Line *
        set(std::uint64_t block)
        {
            return &arr[(block & (sets - 1)) *
                        static_cast<std::uint64_t>(cfg.ways)];
        }
    };

    /** Upper bound on configured levels (victim scratch in access). */
    static constexpr size_t maxLevels = 8;

    std::vector<Level> lvls;
    std::uint32_t memCycles;
    std::uint64_t stampCounter = 0;
};

} // namespace gpsm::tlb

#endif // GPSM_TLB_CACHE_MODEL_HH
