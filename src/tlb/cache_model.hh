/**
 * @file
 * Multi-level set-associative data cache model.
 *
 * Captures the on-chip locality effects that accompany the paper's
 * reordering optimization (DBG improves both cache and TLB behaviour,
 * §5.2 "any other improvement ... is present in the baseline and with
 * our page management strategy"). Physically indexed; LRU per set.
 */

#ifndef GPSM_TLB_CACHE_MODEL_HH
#define GPSM_TLB_CACHE_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/stats.hh"
#include "util/units.hh"

namespace gpsm::tlb
{

/** Geometry and latency of one cache level. */
struct CacheLevelConfig
{
    std::string name = "cache";
    std::uint64_t bytes = 32 * 1024;
    std::uint32_t ways = 8;
    std::uint32_t lineBytes = 64;
    std::uint32_t hitCycles = 4;
};

/**
 * Inclusive multi-level cache. access() probes L1..Ln in order and
 * returns the cycles of the first hit (or the memory latency on a full
 * miss), filling all levels on the way back.
 */
class CacheModel
{
  public:
    /**
     * @param levels L1 first.
     * @param memory_cycles Latency charged on a full miss.
     */
    CacheModel(std::vector<CacheLevelConfig> levels,
               std::uint32_t memory_cycles);

    /** Probe with a physical address; @return latency in cycles. */
    std::uint32_t access(Addr paddr);

    /** Drop all lines (used between experiment phases). */
    void flushAll();

    void registerStats(StatSet &stats, const std::string &prefix) const;

    size_t levels() const { return lvls.size(); }
    std::uint64_t hitsAt(size_t level) const
    {
        return lvls[level].hits.value();
    }
    std::uint64_t memoryAccesses() const { return misses.value(); }

    Counter accesses;
    Counter misses; ///< accesses that reached memory

  private:
    struct Line
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint64_t stamp = 0;
    };

    struct Level
    {
        CacheLevelConfig cfg;
        std::uint32_t sets = 0;
        unsigned lineShift = 0;
        std::vector<Line> arr;
        mutable Counter hits;

        Line *
        set(std::uint64_t block)
        {
            return &arr[(block & (sets - 1)) *
                        static_cast<std::uint64_t>(cfg.ways)];
        }
    };

    /** Install @p block into @p level, LRU-evicting. */
    void fill(Level &lvl, std::uint64_t block);

    std::vector<Level> lvls;
    std::uint32_t memCycles;
    std::uint64_t stampCounter = 0;
};

} // namespace gpsm::tlb

#endif // GPSM_TLB_CACHE_MODEL_HH
