/**
 * @file
 * Cycle cost model: converts memory-management events into simulated
 * time.
 *
 * The paper reports wall-clock kernel computation time measured with
 * perf on a Haswell Xeon; we reproduce the *shape* of those results by
 * accumulating per-event cycle costs calibrated against published
 * measurements (TLB miss penalties, fault service times, compaction and
 * swap costs). Absolute seconds are not claimed — ratios between
 * configurations are the reproduced quantity.
 */

#ifndef GPSM_TLB_COST_MODEL_HH
#define GPSM_TLB_COST_MODEL_HH

#include <cstdint>

#include "util/units.hh"

namespace gpsm::tlb
{

/**
 * All tunables are cycles at `frequencyGhz` unless noted.
 *
 * Defaults reflect a ~3.2GHz Haswell-class core:
 * - STLB hit: ~9 cycles extra over an L1 TLB hit.
 * - Page walk: ~100+ cycles for a 4-level 4KB walk; huge-page walks
 *   skip one level and hit the paging-structure caches more often.
 * - Minor fault: ~1us of kernel entry + PTE setup + 4KB zeroing.
 * - Huge fault: dominated by clearing the huge page; expressed per
 *   constituent base page so it scales with the configured huge size.
 * - Major fault: ~100us (NVMe-class swap-in, paper's order-of-
 *   magnitude collapse needs only "much larger than everything else").
 * - Migration: ~2.5us per page copied by compaction.
 * - Reclaim: dropping a clean page-cache page.
 * - Shootdown: IPI + invalidation per retired mapping.
 */
struct CostModel
{
    double frequencyGhz = 3.2;

    /** Non-memory work per traced access (ALU/branch amortization). */
    std::uint32_t baseAccessCycles = 1;

    std::uint32_t stlbHitCycles = 9;
    std::uint32_t walkCyclesBase = 110;
    std::uint32_t walkCyclesHuge = 85;
    std::uint32_t walkCyclesGiant = 60;

    /** @name Input-file transfer cost per base page read at load time
     *  (paper §4.3's three staging options) @{ */
    std::uint64_t fileReadLocalCacheCycles = 600;  ///< local DRAM copy
    std::uint64_t fileReadRemoteCycles = 1100;     ///< remote-node DRAM
    std::uint64_t fileReadDirectIoCycles = 40000;  ///< NVMe-class read
    /** @} */

    /** @name Out-of-core file mappings (mmap-style CSR backing)
     *
     * Charged only by faults on file-backed VMAs, so in-core runs
     * never pay them. A read fills the page from NVMe-class storage;
     * a dirty eviction pays the write on the same device.
     * @{ */
    std::uint64_t fileMapReadCycles = 40000;       ///< storage fill
    std::uint64_t fileMapWritebackCycles = 64000;  ///< dirty writeback
    /** @} */

    std::uint64_t minorFaultCycles = 3200;
    std::uint64_t hugeFaultCyclesPerBasePage = 800;
    std::uint64_t majorFaultCycles = 320000;
    std::uint64_t swapOutCyclesPerPage = 64000;
    std::uint64_t migrateCyclesPerPage = 8000;
    std::uint64_t reclaimCyclesPerPage = 1200;
    std::uint64_t compactionFailCycles = 150000;
    std::uint64_t shootdownCycles = 1800;

    /** @name Remote-DRAM tier (two-node machine)
     *
     * Charged only for accesses whose translated frame lives on the
     * remote node, so a single-node machine never pays them. The
     * per-access adder models the extra QPI hop on an LLC miss
     * (~60-90 cycles on 2-socket Haswell); the multipliers model
     * fault-time zeroing and swap traffic touching remote DRAM.
     * @{ */
    std::uint32_t remoteMemoryCycles = 90;
    double remoteFaultMultiplier = 1.4;
    double remoteSwapMultiplier = 1.2;
    /** @} */

    /**
     * Backoff charged per bounded huge-fault retry (the fault path
     * waiting out a transient allocation-failure window before
     * falling back to base pages). Only reachable when
     * ThpConfig::hugeFaultRetries > 0, so default runs never pay it.
     */
    std::uint64_t hugeRetryBackoffCycles = 20000;

    double
    seconds(Cycles cycles) const
    {
        return static_cast<double>(cycles) / (frequencyGhz * 1e9);
    }

    std::uint64_t
    hugeFaultCycles(unsigned huge_order) const
    {
        return hugeFaultCyclesPerBasePage * (1ull << huge_order);
    }
};

} // namespace gpsm::tlb

#endif // GPSM_TLB_COST_MODEL_HH
