/**
 * @file
 * Tlb implementation.
 */

#include "tlb/tlb.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace gpsm::tlb
{

Tlb::Tlb(std::string name, std::vector<TlbGeometry> geometry)
    : _name(std::move(name))
{
    subs.resize(std::max<size_t>(geometry.size(),
                                 vm::numPageSizeClasses));
    for (size_t i = 0; i < geometry.size(); ++i) {
        const TlbGeometry &g = geometry[i];
        SubTlb &sub = subs[i];
        if (g.entries == 0)
            continue;
        if (g.ways == 0 || g.entries % g.ways != 0)
            fatal("TLB %s class %zu: %u entries not divisible by %u "
                  "ways",
                  _name.c_str(), i, g.entries, g.ways);
        sub.sets = g.entries / g.ways;
        if (!isPowerOfTwo(sub.sets))
            fatal("TLB %s class %zu: set count %u not a power of two",
                  _name.c_str(), i, sub.sets);
        sub.ways = g.ways;
        sub.arr.assign(static_cast<size_t>(sub.sets) * sub.ways, Way{});
    }
}

Tlb
Tlb::makeUnified(std::string name, std::uint32_t entries,
                 std::uint32_t ways)
{
    Tlb tlb(std::move(name), {TlbGeometry{entries, ways}});
    tlb.unified = true;
    return tlb;
}

void
Tlb::invalidate(std::uint64_t vpn, vm::PageSizeClass cls)
{
    SubTlb &sub = subFor(cls);
    if (sub.sets == 0)
        return;
    Way *set = sub.set(vpn);
    for (std::uint32_t w = 0; w < sub.ways; ++w) {
        if (set[w].valid && set[w].vpn == vpn && set[w].cls == cls) {
            set[w].valid = false;
            ++invalidations;
            return;
        }
    }
}

void
Tlb::flushAll()
{
    for (SubTlb &sub : subs)
        for (Way &w : sub.arr)
            w.valid = false;
    ++flushes;
}

std::uint64_t
Tlb::validEntries(vm::PageSizeClass cls) const
{
    const SubTlb &sub = subFor(cls);
    std::uint64_t n = 0;
    for (const Way &w : sub.arr)
        n += (w.valid && (!unified || w.cls == cls)) ? 1 : 0;
    return n;
}

void
Tlb::registerStats(StatSet &stats) const
{
    stats.registerCounter(_name + ".accesses", &accesses,
                          "translation probes");
    stats.registerCounter(_name + ".misses", &misses,
                          "probes missing every sub-TLB class");
    stats.registerCounter(_name + ".insertions", &insertions, "fills");
    stats.registerCounter(_name + ".evictions", &evictions,
                          "valid entries displaced by fills");
    stats.registerCounter(_name + ".invalidations", &invalidations,
                          "entries removed by shootdowns");
    stats.registerCounter(_name + ".flushes", &flushes,
                          "full flushes");
}

} // namespace gpsm::tlb
