/**
 * @file
 * Size and time unit helpers shared across the simulator.
 */

#ifndef GPSM_UTIL_UNITS_HH
#define GPSM_UTIL_UNITS_HH

#include <cstdint>
#include <string>

namespace gpsm
{

/** Simulated clock cycles (monotonic, accumulated by the cost model). */
using Cycles = std::uint64_t;

/** Byte counts and addresses. */
using Addr = std::uint64_t;

constexpr std::uint64_t KiB = 1024ull;
constexpr std::uint64_t MiB = 1024ull * KiB;
constexpr std::uint64_t GiB = 1024ull * MiB;

constexpr std::uint64_t operator""_KiB(unsigned long long v)
{
    return v * KiB;
}
constexpr std::uint64_t operator""_MiB(unsigned long long v)
{
    return v * MiB;
}
constexpr std::uint64_t operator""_GiB(unsigned long long v)
{
    return v * GiB;
}

/** Render a byte count as a short human-readable string ("16.5GB"). */
std::string formatBytes(std::uint64_t bytes);

/** Render a cycle count at a given frequency as seconds ("1.24s"). */
std::string formatSeconds(double seconds);

} // namespace gpsm

#endif // GPSM_UTIL_UNITS_HH
