/**
 * @file
 * Lightweight named statistics, in the spirit of gem5's stats package.
 *
 * A StatSet owns a group of named counters; modules register counters at
 * construction and bump them on hot paths with plain integer increments.
 * StatSet can render itself as text or CSV and supports diffing so a
 * caller can isolate the events of one execution phase.
 */

#ifndef GPSM_UTIL_STATS_HH
#define GPSM_UTIL_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gpsm
{

/**
 * A single monotonically increasing event counter.
 *
 * Counter is trivially copyable; hot paths increment via operator++ or
 * operator+=. Registration with a StatSet is by pointer, so a Counter
 * must outlive the StatSet snapshotting it.
 */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++val; return *this; }
    Counter &operator+=(std::uint64_t n) { val += n; return *this; }

    std::uint64_t value() const { return val; }
    void reset() { val = 0; }

  private:
    std::uint64_t val = 0;
};

/**
 * A named group of counters with snapshot/diff support.
 */
class StatSet
{
  public:
    explicit StatSet(std::string name) : _name(std::move(name)) {}

    StatSet(const StatSet &) = delete;
    StatSet &operator=(const StatSet &) = delete;

    /**
     * Register a counter under @p name.
     *
     * @param name Dotted stat name, e.g. "dtlb.misses".
     * @param counter Pointer to a counter that outlives this set.
     * @param desc One-line description used in dumps.
     */
    void registerCounter(const std::string &name, const Counter *counter,
                         std::string desc = "");

    /** Reset every registered counter to zero. */
    void resetAll();

    /** @return the live value of stat @p name (panics if unknown). */
    std::uint64_t value(const std::string &name) const;

    /** @return true if @p name is registered. */
    bool has(const std::string &name) const;

    /** Point-in-time copy of all counter values. */
    std::map<std::string, std::uint64_t> snapshot() const;

    /**
     * Values accumulated since @p before was taken.
     *
     * Stats added after the snapshot appear with their full value.
     */
    std::map<std::string, std::uint64_t>
    since(const std::map<std::string, std::uint64_t> &before) const;

    /** Render "name value # desc" lines, gem5 stats.txt style. */
    std::string dump() const;

    const std::string &name() const { return _name; }
    std::vector<std::string> statNames() const;

  private:
    struct Entry
    {
        const Counter *counter;
        std::string desc;
    };

    std::string _name;
    std::map<std::string, Entry> entries;
};

} // namespace gpsm

#endif // GPSM_UTIL_STATS_HH
