/**
 * @file
 * Bit and alignment helpers used by the allocator, page tables and TLBs.
 */

#ifndef GPSM_UTIL_BITOPS_HH
#define GPSM_UTIL_BITOPS_HH

#include <bit>
#include <cstdint>

namespace gpsm
{

/** @return true when @p v is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** @return floor(log2(v)); @p v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v | 1));
}

/** @return ceil(log2(v)); @p v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return floorLog2(v) + (isPowerOfTwo(v) ? 0u : 1u);
}

/** Round @p v down to a multiple of power-of-two @p align. */
constexpr std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** Round @p v up to a multiple of power-of-two @p align. */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** @return true when @p v is a multiple of power-of-two @p align. */
constexpr bool
isAligned(std::uint64_t v, std::uint64_t align)
{
    return (v & (align - 1)) == 0;
}

/** Integer division rounding up. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace gpsm

#endif // GPSM_UTIL_BITOPS_HH
