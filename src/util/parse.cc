/**
 * @file
 * Strict numeric parsing implementation.
 */

#include "util/parse.hh"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>

#include "util/logging.hh"

namespace gpsm
{

namespace
{

/** Shared pre-checks: non-empty and no leading whitespace (strtoul
 *  would skip it, hiding " 5" vs "5" differences in error output). */
void
checkHead(const std::string &text, const char *what)
{
    if (text.empty())
        fatal("%s: expected a number, got an empty string", what);
    if (std::isspace(static_cast<unsigned char>(text[0])))
        fatal("%s: expected a number, got '%s'", what, text.c_str());
}

} // namespace

std::uint64_t
parseU64(const std::string &text, const char *what)
{
    checkHead(text, what);
    // strtoull accepts a leading '-' by wrapping; reject it up front.
    if (text[0] == '-' || text[0] == '+')
        fatal("%s: expected an unsigned number, got '%s'", what,
              text.c_str());
    errno = 0;
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size() || end == text.c_str())
        fatal("%s: expected a number, got '%s'", what, text.c_str());
    if (errno == ERANGE)
        fatal("%s: '%s' out of range", what, text.c_str());
    return static_cast<std::uint64_t>(v);
}

unsigned
parseUnsigned(const std::string &text, const char *what)
{
    const std::uint64_t v = parseU64(text, what);
    if (v > UINT_MAX)
        fatal("%s: '%s' out of range", what, text.c_str());
    return static_cast<unsigned>(v);
}

std::int64_t
parseI64(const std::string &text, const char *what)
{
    checkHead(text, what);
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size() || end == text.c_str())
        fatal("%s: expected a number, got '%s'", what, text.c_str());
    if (errno == ERANGE)
        fatal("%s: '%s' out of range", what, text.c_str());
    return static_cast<std::int64_t>(v);
}

double
parseDouble(const std::string &text, const char *what)
{
    checkHead(text, what);
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || end == text.c_str())
        fatal("%s: expected a number, got '%s'", what, text.c_str());
    if (errno == ERANGE || !std::isfinite(v))
        fatal("%s: '%s' out of range", what, text.c_str());
    return v;
}

} // namespace gpsm
