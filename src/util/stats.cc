/**
 * @file
 * StatSet implementation.
 */

#include "util/stats.hh"

#include <sstream>

#include "util/logging.hh"

namespace gpsm
{

void
StatSet::registerCounter(const std::string &name, const Counter *counter,
                         std::string desc)
{
    GPSM_ASSERT(counter != nullptr);
    auto [it, inserted] = entries.emplace(name,
                                          Entry{counter, std::move(desc)});
    if (!inserted)
        panic("stat '%s' registered twice in set '%s'", name.c_str(),
              _name.c_str());
    (void)it;
}

void
StatSet::resetAll()
{
    for (auto &[name, entry] : entries)
        const_cast<Counter *>(entry.counter)->reset();
}

std::uint64_t
StatSet::value(const std::string &name) const
{
    auto it = entries.find(name);
    if (it == entries.end())
        panic("unknown stat '%s' in set '%s'", name.c_str(), _name.c_str());
    return it->second.counter->value();
}

bool
StatSet::has(const std::string &name) const
{
    return entries.find(name) != entries.end();
}

std::map<std::string, std::uint64_t>
StatSet::snapshot() const
{
    std::map<std::string, std::uint64_t> snap;
    for (const auto &[name, entry] : entries)
        snap.emplace(name, entry.counter->value());
    return snap;
}

std::map<std::string, std::uint64_t>
StatSet::since(const std::map<std::string, std::uint64_t> &before) const
{
    std::map<std::string, std::uint64_t> delta;
    for (const auto &[name, entry] : entries) {
        auto it = before.find(name);
        std::uint64_t base = (it == before.end()) ? 0 : it->second;
        std::uint64_t now = entry.counter->value();
        // A resetAll() between the snapshot and now leaves live values
        // below the snapshot; that means "no events since", not a
        // wrapped ~2^64 delta.
        delta.emplace(name, now >= base ? now - base : 0);
    }
    return delta;
}

std::string
StatSet::dump() const
{
    std::ostringstream os;
    os << "---------- " << _name << " ----------\n";
    for (const auto &[name, entry] : entries) {
        os << name;
        for (size_t i = name.size(); i < 44; ++i)
            os << ' ';
        os << entry.counter->value();
        if (!entry.desc.empty())
            os << "  # " << entry.desc;
        os << '\n';
    }
    return os.str();
}

std::vector<std::string>
StatSet::statNames() const
{
    std::vector<std::string> names;
    names.reserve(entries.size());
    for (const auto &[name, entry] : entries) {
        (void)entry;
        names.push_back(name);
    }
    return names;
}

} // namespace gpsm
