/**
 * @file
 * Log2Histogram implementation.
 */

#include "util/histogram.hh"

#include <sstream>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace gpsm
{

unsigned
Log2Histogram::bucketOf(std::uint64_t sample)
{
    if (sample == 0)
        return 0;
    return floorLog2(sample) + 1;
}

std::uint64_t
Log2Histogram::percentileUpperBound(double q) const
{
    GPSM_ASSERT(q >= 0.0 && q <= 1.0);
    if (total == 0)
        return 0;
    const auto threshold =
        static_cast<std::uint64_t>(q * static_cast<double>(total));
    std::uint64_t seen = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
        seen += counts[i];
        if (seen >= threshold) {
            if (i == 0)
                return 0;
            // Bucket 64 holds samples in [2^63, 2^64); its upper
            // bound does not fit a shift, so report the observed max.
            return i >= 64 ? maxSample : (1ull << i) - 1;
        }
    }
    return maxSample;
}

std::string
Log2Histogram::dump() const
{
    std::ostringstream os;
    for (size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0)
            continue;
        std::uint64_t lo = i == 0 ? 0 : (1ull << (i - 1));
        std::uint64_t hi = i == 0 ? 1 : (1ull << i);
        os << '[' << lo << ',' << hi << ") " << counts[i] << '\n';
    }
    return os.str();
}

} // namespace gpsm
