/**
 * @file
 * ThreadPool implementation.
 */

#include "util/thread_pool.hh"

#include <algorithm>

namespace gpsm::util
{

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned count = std::max(threads, 1u);
    workers.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mtx);
        stopping = true;
    }
    wakeWorker.notify_all();
    for (std::thread &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::unique_lock<std::mutex> lock(mtx);
        queue.push_back(std::move(job));
        ++inFlight;
    }
    wakeWorker.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mtx);
    batchDone.wait(lock, [this] { return inFlight == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mtx);
            wakeWorker.wait(lock, [this] {
                return stopping || !queue.empty();
            });
            if (queue.empty())
                return; // stopping and drained
            job = std::move(queue.front());
            queue.pop_front();
        }
        job();
        {
            std::unique_lock<std::mutex> lock(mtx);
            if (--inFlight == 0)
                batchDone.notify_all();
        }
    }
}

unsigned
ThreadPool::hardwareThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

} // namespace gpsm::util
