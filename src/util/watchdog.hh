/**
 * @file
 * Wall-clock deadline watchdog shared by the batch engine and the
 * experiment service.
 *
 * Workers register a cooperative cancellation flag together with a
 * deadline; a single scanner thread trips every flag whose deadline
 * has passed. Scanning at a coarse period keeps the cost negligible
 * next to multi-second experiments while bounding overshoot to ~one
 * scan period plus cancellation latency. An optional process-level
 * interrupt flag (a SIGINT/SIGTERM handler's atomic) trips *every*
 * registered flag as soon as it is observed set, which is how
 * gpsm_run cancels in-flight experiments on ctrl-C and gpsm_serve
 * drains on shutdown.
 */

#ifndef GPSM_UTIL_WATCHDOG_HH
#define GPSM_UTIL_WATCHDOG_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gpsm::util
{

/**
 * Deadline scanner. Thread-safe; one instance watches any number of
 * flags. Destruction stops the scanner without touching still-
 * registered flags (callers unwatch on their own completion paths).
 */
class DeadlineWatchdog
{
  public:
    using Clock = std::chrono::steady_clock;
    using Flag = std::shared_ptr<std::atomic<bool>>;

    /**
     * @param interrupt Optional external kill switch: while it reads
     *        true, every watched flag (current and future) is tripped
     *        immediately, regardless of deadline. May be null.
     */
    explicit DeadlineWatchdog(const std::atomic<bool> *interrupt = nullptr);
    ~DeadlineWatchdog();

    DeadlineWatchdog(const DeadlineWatchdog &) = delete;
    DeadlineWatchdog &operator=(const DeadlineWatchdog &) = delete;

    /**
     * Register @p flag to be tripped at @p deadline (or right away
     * when the interrupt switch is already set). A deadline of
     * Clock::time_point::max() registers for interrupt-only
     * cancellation.
     */
    void watch(const Flag &flag, Clock::time_point deadline);

    /** Deregister @p flag (no-op when it already fired or is gone). */
    void unwatch(const Flag &flag);

  private:
    struct Entry
    {
        Flag flag;
        Clock::time_point deadline;
    };

    void loop();

    std::mutex mtx;
    std::condition_variable cv;
    std::vector<Entry> active;
    const std::atomic<bool> *interruptFlag;
    bool stopping = false;
    std::thread scanner;
};

} // namespace gpsm::util

#endif // GPSM_UTIL_WATCHDOG_HH
