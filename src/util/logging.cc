/**
 * @file
 * Implementation of the logging helpers.
 */

#include "util/logging.hh"

#include <atomic>
#include <cstdarg>
#include <vector>

namespace gpsm
{

namespace
{

std::atomic<bool> quietFlag{false};

} // anonymous namespace

namespace detail
{

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed < 0)
        return std::string(fmt);

    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
format(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
emit(const char *prefix, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

} // namespace detail

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    detail::emit("fatal", msg);
    throw FatalError(msg);
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    detail::emit("panic", msg);
    throw PanicError(msg);
}

void
warn(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    detail::emit("warn", msg);
}

void
inform(const char *fmt, ...)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    detail::emit("info", msg);
}

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
quiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

} // namespace gpsm
