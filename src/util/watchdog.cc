/**
 * @file
 * DeadlineWatchdog implementation.
 */

#include "util/watchdog.hh"

namespace gpsm::util
{

DeadlineWatchdog::DeadlineWatchdog(const std::atomic<bool> *interrupt)
    : interruptFlag(interrupt), scanner([this] { loop(); })
{
}

DeadlineWatchdog::~DeadlineWatchdog()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    cv.notify_all();
    scanner.join();
}

void
DeadlineWatchdog::watch(const Flag &flag, Clock::time_point deadline)
{
    if (interruptFlag != nullptr &&
        interruptFlag->load(std::memory_order_relaxed)) {
        flag->store(true, std::memory_order_relaxed);
        return;
    }
    std::lock_guard<std::mutex> lock(mtx);
    active.push_back({flag, deadline});
}

void
DeadlineWatchdog::unwatch(const Flag &flag)
{
    std::lock_guard<std::mutex> lock(mtx);
    for (auto it = active.begin(); it != active.end(); ++it) {
        if (it->flag == flag) {
            active.erase(it);
            return;
        }
    }
}

void
DeadlineWatchdog::loop()
{
    std::unique_lock<std::mutex> lock(mtx);
    while (!stopping) {
        const bool interrupted =
            interruptFlag != nullptr &&
            interruptFlag->load(std::memory_order_relaxed);
        const auto now = Clock::now();
        for (const Entry &e : active) {
            if (interrupted || now >= e.deadline)
                e.flag->store(true, std::memory_order_relaxed);
        }
        cv.wait_for(lock, std::chrono::milliseconds(25));
    }
}

} // namespace gpsm::util
