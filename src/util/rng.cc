/**
 * @file
 * Rng::discard — arbitrary-distance jump-ahead for xoshiro256**.
 *
 * The state transition (ignoring the output scrambler, which does not
 * feed back into the state) is linear over GF(2): shifts, rotates and
 * XORs only. One step is therefore a 256x256 bit matrix M, and
 * skipping n steps multiplies the state vector by M^n. We lazily build
 * M^(2^k) for k in [0, 64) by repeated squaring (~512 KiB, built once
 * per process) and apply the matrices selected by the bits of n.
 */

#include "util/rng.hh"

#include <array>
#include <bit>
#include <memory>

namespace gpsm
{

namespace
{

/** 256-bit vector: the four xoshiro lanes viewed as one bit string. */
struct Vec256
{
    std::uint64_t w[4];
};

/** Column-major 256x256 GF(2) matrix: col[i] = M * e_i. */
struct Mat256
{
    std::array<Vec256, 256> col;
};

/** One xoshiro256** state transition (the linear part of operator()). */
void
stepState(std::uint64_t s[4])
{
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = (s[3] << 45) | (s[3] >> 19);
}

Vec256
matVec(const Mat256 &m, const Vec256 &v)
{
    Vec256 r{};
    for (unsigned wi = 0; wi < 4; ++wi) {
        std::uint64_t bits = v.w[wi];
        while (bits != 0) {
            const unsigned i =
                wi * 64 +
                static_cast<unsigned>(std::countr_zero(bits));
            bits &= bits - 1;
            for (unsigned k = 0; k < 4; ++k)
                r.w[k] ^= m.col[i].w[k];
        }
    }
    return r;
}

/** Table of M^(2^k); built on first use, thread-safe via static init. */
const std::array<Mat256, 64> &
jumpTable()
{
    static const std::unique_ptr<const std::array<Mat256, 64>> table =
        [] {
            auto t = std::make_unique<std::array<Mat256, 64>>();
            Mat256 &m0 = (*t)[0];
            for (unsigned i = 0; i < 256; ++i) {
                std::uint64_t s[4] = {0, 0, 0, 0};
                s[i >> 6] = 1ull << (i & 63);
                stepState(s);
                m0.col[i] = Vec256{{s[0], s[1], s[2], s[3]}};
            }
            for (unsigned k = 1; k < 64; ++k)
                for (unsigned i = 0; i < 256; ++i)
                    (*t)[k].col[i] =
                        matVec((*t)[k - 1], (*t)[k - 1].col[i]);
            return t;
        }();
    return *table;
}

} // namespace

void
Rng::discard(std::uint64_t n)
{
    // Short skips: stepping directly is cheaper than streaming the
    // jump table through the cache.
    constexpr std::uint64_t direct_limit = 1024;
    if (n < direct_limit) {
        while (n-- != 0)
            stepState(state);
        return;
    }
    const auto &table = jumpTable();
    Vec256 v{{state[0], state[1], state[2], state[3]}};
    for (unsigned k = 0; n != 0; ++k, n >>= 1)
        if ((n & 1) != 0)
            v = matVec(table[k], v);
    state[0] = v.w[0];
    state[1] = v.w[1];
    state[2] = v.w[2];
    state[3] = v.w[3];
}

} // namespace gpsm
