/**
 * @file
 * Minimal fixed-size worker pool for embarrassingly parallel batches.
 *
 * The experiment engine (core::ExperimentPool) is the primary client:
 * it submits independent closures and waits for the batch to drain.
 * The pool makes no fairness or ordering guarantees — callers that
 * need ordered results index into a pre-sized output vector from
 * inside the job.
 */

#ifndef GPSM_UTIL_THREAD_POOL_HH
#define GPSM_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gpsm::util
{

/**
 * Fixed set of worker threads consuming a FIFO job queue.
 *
 * Jobs must not throw: the pool runs figure-bench workloads whose
 * errors are fatal anyway, and propagating exceptions across workers
 * would complicate the bit-for-bit determinism story for no client.
 * Exceptions escaping a job terminate the process (std::terminate),
 * matching what an uncaught exception in main would do.
 */
class ThreadPool
{
  public:
    /**
     * @param threads Worker count; clamped to at least 1. Pass
     *        hardwareThreads() for one worker per logical CPU.
     */
    explicit ThreadPool(unsigned threads);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one job; runs on some worker, eventually. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished executing. */
    void wait();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers.size());
    }

    /** std::thread::hardware_concurrency with a sane fallback of 1. */
    static unsigned hardwareThreads();

  private:
    void workerLoop();

    std::mutex mtx;
    std::condition_variable wakeWorker;
    std::condition_variable batchDone;
    std::deque<std::function<void()>> queue;
    std::size_t inFlight = 0; ///< queued + currently executing
    bool stopping = false;
    std::vector<std::thread> workers;
};

} // namespace gpsm::util

#endif // GPSM_UTIL_THREAD_POOL_HH
