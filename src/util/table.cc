/**
 * @file
 * TableWriter implementation.
 */

#include "util/table.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace gpsm
{

void
TableWriter::setHeader(std::vector<std::string> cols)
{
    GPSM_ASSERT(body.empty(), "header must precede rows");
    header = std::move(cols);
}

void
TableWriter::addRow(std::vector<std::string> cells)
{
    if (!header.empty() && cells.size() != header.size())
        panic("table '%s': row arity %zu != header arity %zu",
              _title.c_str(), cells.size(), header.size());
    body.push_back(std::move(cells));
}

std::string
TableWriter::num(double v, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TableWriter::pct(double fraction, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string
TableWriter::text() const
{
    std::vector<size_t> widths(header.size(), 0);
    auto grow = [&](const std::vector<std::string> &row) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    grow(header);
    for (const auto &row : body)
        grow(row);

    std::ostringstream os;
    os << "== " << _title << " ==\n";
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            os << row[i];
            if (i + 1 < row.size())
                os << std::string(widths[i] - row[i].size() + 2, ' ');
        }
        os << '\n';
    };
    if (!header.empty()) {
        emit(header);
        size_t rule = 0;
        for (size_t w : widths)
            rule += w + 2;
        os << std::string(rule > 2 ? rule - 2 : rule, '-') << '\n';
    }
    for (const auto &row : body)
        emit(row);
    return os.str();
}

namespace
{

std::string
csvQuote(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // anonymous namespace

std::string
TableWriter::csv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            os << csvQuote(row[i]);
            if (i + 1 < row.size())
                os << ',';
        }
        os << '\n';
    };
    if (!header.empty())
        emit(header);
    for (const auto &row : body)
        emit(row);
    return os.str();
}

void
TableWriter::print(std::ostream &os, bool with_csv) const
{
    os << text();
    if (with_csv) {
        os << "# CSV: " << _title << '\n';
        std::istringstream lines(csv());
        std::string line;
        while (std::getline(lines, line))
            os << "# " << line << '\n';
    }
    os << '\n';
}

} // namespace gpsm
