/**
 * @file
 * Power-of-two bucketed histogram for degree / reuse distributions.
 */

#ifndef GPSM_UTIL_HISTOGRAM_HH
#define GPSM_UTIL_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace gpsm
{

/**
 * Histogram over uint64 samples with log2 buckets.
 *
 * Bucket i counts samples in [2^(i-1), 2^i) for i >= 1; bucket 0 counts
 * zero-valued samples. Used for vertex degrees and per-structure access
 * frequency profiles (paper Fig. 4).
 */
class Log2Histogram
{
  public:
    void
    add(std::uint64_t sample, std::uint64_t weight = 1)
    {
        unsigned bucket = bucketOf(sample);
        if (bucket >= counts.size())
            counts.resize(bucket + 1, 0);
        counts[bucket] += weight;
        total += weight;
        if (sample > maxSample)
            maxSample = sample;
        sum += sample * weight;
    }

    /** Bucket index for a sample value. */
    static unsigned bucketOf(std::uint64_t sample);

    std::uint64_t samples() const { return total; }
    std::uint64_t max() const { return maxSample; }
    double mean() const
    {
        return total ? static_cast<double>(sum) / total : 0.0;
    }

    /** Smallest v such that at least fraction @p q of samples <= v. */
    std::uint64_t percentileUpperBound(double q) const;

    const std::vector<std::uint64_t> &buckets() const { return counts; }

    /** Multi-line "[lo,hi) count" rendering. */
    std::string dump() const;

  private:
    std::vector<std::uint64_t> counts;
    std::uint64_t total = 0;
    std::uint64_t sum = 0;
    std::uint64_t maxSample = 0;
};

} // namespace gpsm

#endif // GPSM_UTIL_HISTOGRAM_HH
