/**
 * @file
 * Unit formatting helpers.
 */

#include "util/units.hh"

#include <cstdio>

namespace gpsm
{

std::string
formatBytes(std::uint64_t bytes)
{
    char buf[32];
    if (bytes >= GiB) {
        std::snprintf(buf, sizeof(buf), "%.2fGiB",
                      static_cast<double>(bytes) / GiB);
    } else if (bytes >= MiB) {
        std::snprintf(buf, sizeof(buf), "%.2fMiB",
                      static_cast<double>(bytes) / MiB);
    } else if (bytes >= KiB) {
        std::snprintf(buf, sizeof(buf), "%.2fKiB",
                      static_cast<double>(bytes) / KiB);
    } else {
        std::snprintf(buf, sizeof(buf), "%lluB",
                      static_cast<unsigned long long>(bytes));
    }
    return buf;
}

std::string
formatSeconds(double seconds)
{
    // Zero and negatives used to fall into the "us" branch and render
    // as "0.000us" / "-3000000.000us"; pin zero and mirror negatives
    // around the positive scale selection instead.
    if (seconds == 0.0)
        return "0.000s";
    if (seconds < 0.0)
        return "-" + formatSeconds(-seconds);
    char buf[32];
    if (seconds >= 1.0)
        std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
    else if (seconds >= 1e-3)
        std::snprintf(buf, sizeof(buf), "%.3fms", seconds * 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.3fus", seconds * 1e6);
    return buf;
}

} // namespace gpsm
