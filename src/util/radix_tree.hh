/**
 * @file
 * A Linux-style radix tree mapping sparse 64-bit indices to values —
 * the page-index structure behind mem::AddressSpaceCache (one tree per
 * file object, file-page offset -> cached page descriptor).
 *
 * Shape follows the kernel's lib/radix-tree: 64-way fanout, the tree
 * height grows on demand to cover the largest inserted index, and
 * erase prunes empty interior nodes so a drained tree releases all its
 * memory. Values are heap-allocated once and never move, so pointers
 * returned by find()/insert() stay valid until that index is erased.
 *
 * Iteration (forEach) visits entries in strictly increasing index
 * order, which keeps every consumer deterministic.
 */

#ifndef GPSM_UTIL_RADIX_TREE_HH
#define GPSM_UTIL_RADIX_TREE_HH

#include <array>
#include <cstdint>
#include <utility>

#include "util/logging.hh"

namespace gpsm::util
{

template <typename T>
class RadixTree
{
  public:
    static constexpr unsigned kBits = 6;
    static constexpr unsigned kFanout = 1u << kBits;

    RadixTree() = default;
    ~RadixTree() { clear(); }

    RadixTree(const RadixTree &) = delete;
    RadixTree &operator=(const RadixTree &) = delete;

    RadixTree(RadixTree &&other) noexcept
        : root(other.root), height(other.height), count_(other.count_)
    {
        other.root = nullptr;
        other.height = 0;
        other.count_ = 0;
    }

    /** Number of stored entries. */
    std::uint64_t size() const { return count_; }
    bool empty() const { return count_ == 0; }

    /** Pointer to the value at @p index, or nullptr. */
    T *
    find(std::uint64_t index)
    {
        if (root == nullptr || index > maxIndex())
            return nullptr;
        Node *node = root;
        for (unsigned level = height; level > 0; --level) {
            node = static_cast<Node *>(node->slots[slotOf(index, level)]);
            if (node == nullptr)
                return nullptr;
        }
        return static_cast<T *>(node->slots[slotOf(index, 0)]);
    }

    const T *
    find(std::uint64_t index) const
    {
        return const_cast<RadixTree *>(this)->find(index);
    }

    /**
     * Insert a value at @p index (the index must be vacant) and return
     * a reference to the stored copy.
     */
    T &
    insert(std::uint64_t index, T value)
    {
        grow(index);
        Node *node = root;
        for (unsigned level = height; level > 0; --level) {
            void *&slot = node->slots[slotOf(index, level)];
            if (slot == nullptr) {
                slot = new Node();
                ++node->occupied;
            }
            node = static_cast<Node *>(slot);
        }
        void *&slot = node->slots[slotOf(index, 0)];
        GPSM_ASSERT(slot == nullptr, "radix tree: index already present");
        T *stored = new T(std::move(value));
        slot = stored;
        ++node->occupied;
        ++count_;
        return *stored;
    }

    /**
     * Remove the entry at @p index, pruning interior nodes left empty.
     * @return true when an entry was removed.
     */
    bool
    erase(std::uint64_t index)
    {
        if (root == nullptr || index > maxIndex())
            return false;
        if (!eraseIn(root, height, index))
            return false;
        --count_;
        if (count_ == 0) {
            delete root;
            root = nullptr;
            height = 0;
        }
        return true;
    }

    /** Visit (index, value&) in increasing index order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        if (root != nullptr)
            walk(root, height, 0, fn);
    }

    /** Drop every entry and release all nodes. */
    void
    clear()
    {
        if (root != nullptr) {
            destroy(root, height);
            root = nullptr;
        }
        height = 0;
        count_ = 0;
    }

  private:
    struct Node
    {
        std::array<void *, kFanout> slots{};
        std::uint16_t occupied = 0;
    };

    static unsigned
    slotOf(std::uint64_t index, unsigned level)
    {
        return static_cast<unsigned>((index >> (level * kBits)) &
                                     (kFanout - 1));
    }

    /** Largest index the current height can address. */
    std::uint64_t
    maxIndex() const
    {
        const unsigned bits = (height + 1) * kBits;
        if (bits >= 64)
            return ~0ull;
        return (1ull << bits) - 1;
    }

    void
    grow(std::uint64_t index)
    {
        if (root == nullptr)
            root = new Node();
        while (index > maxIndex()) {
            Node *top = new Node();
            // Never link an empty node under the new top: occupied
            // would not count it, and a later eraseIn would see the
            // child's occupied hit zero and free it while it still
            // anchored a live subtree. Empty ⇒ all slots null (the
            // invariant this branch preserves), so dropping it is safe.
            if (root->occupied > 0) {
                top->slots[0] = root;
                top->occupied = 1;
            } else {
                delete root;
            }
            root = top;
            ++height;
        }
    }

    bool
    eraseIn(Node *node, unsigned level, std::uint64_t index)
    {
        void *&slot = node->slots[slotOf(index, level)];
        if (slot == nullptr)
            return false;
        if (level == 0) {
            delete static_cast<T *>(slot);
            slot = nullptr;
            --node->occupied;
            return true;
        }
        Node *child = static_cast<Node *>(slot);
        if (!eraseIn(child, level - 1, index))
            return false;
        if (child->occupied == 0) {
            delete child;
            slot = nullptr;
            --node->occupied;
        }
        return true;
    }

    template <typename Fn>
    void
    walk(const Node *node, unsigned level, std::uint64_t base,
         Fn &&fn) const
    {
        const std::uint64_t stride = 1ull << (level * kBits);
        for (unsigned s = 0; s < kFanout; ++s) {
            void *slot = node->slots[s];
            if (slot == nullptr)
                continue;
            const std::uint64_t index = base + s * stride;
            if (level == 0)
                fn(index, *static_cast<T *>(slot));
            else
                walk(static_cast<const Node *>(slot), level - 1, index,
                     fn);
        }
    }

    void
    destroy(Node *node, unsigned level)
    {
        for (unsigned s = 0; s < kFanout; ++s) {
            void *slot = node->slots[s];
            if (slot == nullptr)
                continue;
            if (level == 0)
                delete static_cast<T *>(slot);
            else
                destroy(static_cast<Node *>(slot), level - 1);
        }
        delete node;
    }

    Node *root = nullptr;
    unsigned height = 0; ///< levels below the root
    std::uint64_t count_ = 0;
};

} // namespace gpsm::util

#endif // GPSM_UTIL_RADIX_TREE_HH
