/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in gpsm (graph generators, randomized tests,
 * synthetic interference) draws from this xoshiro256** implementation so
 * that every run is reproducible from a single seed. Never use
 * std::random_device or wall-clock seeding inside the library.
 */

#ifndef GPSM_UTIL_RNG_HH
#define GPSM_UTIL_RNG_HH

#include <cstdint>

namespace gpsm
{

/**
 * xoshiro256** 1.0 generator (Blackman & Vigna), seeded via splitmix64.
 *
 * Satisfies UniformRandomBitGenerator so it can drive <random>
 * distributions, but the inline helpers below avoid distribution
 * overhead on hot generator paths.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 expansion of the seed into the four lanes.
        std::uint64_t x = seed;
        for (auto &lane : state) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            lane = z ^ (z >> 31);
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    result_type
    operator()()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;

        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) via Lemire's multiply-shift. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        const auto x = operator()();
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(x) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Advance the generator by exactly @p n draws, as if operator()
     * had been called @p n times, in O(1) amortized time for large n.
     *
     * The xoshiro256** state transition is linear over GF(2), so an
     * arbitrary skip is a 256x256 bit-matrix/vector product; a lazily
     * built table of squared step matrices covers every power of two.
     * This is what lets parallel graph generation hand each worker the
     * exact RNG stream position serial generation would have reached.
     */
    void discard(std::uint64_t n);

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace gpsm

#endif // GPSM_UTIL_RNG_HH
