/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a library bug), fatal() is for user errors (bad
 * configuration or arguments), warn()/inform() are non-fatal status
 * channels. All messages go to stderr so table output on stdout stays
 * machine-parseable.
 */

#ifndef GPSM_UTIL_LOGGING_HH
#define GPSM_UTIL_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace gpsm
{

/** Thrown by fatal(); carries the formatted user-facing message. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Thrown by panic(); indicates a gpsm-internal invariant violation. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/**
 * Thrown when a cooperative cancellation flag trips mid-execution
 * (the experiment watchdog's timeout path). Neither a user error nor
 * a gpsm bug: harness code catches it and reports a structured
 * timeout, so it deliberately shares no base with FatalError or
 * PanicError beyond std::exception.
 */
class CancelledError : public std::runtime_error
{
  public:
    explicit CancelledError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

namespace detail
{

/** printf-style formatting into a std::string. */
std::string vformat(const char *fmt, std::va_list ap);
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

void emit(const char *prefix, const std::string &msg);

} // namespace detail

/**
 * Report a condition caused by the user (bad configuration, invalid
 * arguments) and abort the current operation by throwing FatalError.
 *
 * @param fmt printf-style format string.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation (a gpsm bug) and throw
 * PanicError. Never use for conditions a caller can trigger legally.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report suspicious-but-survivable conditions to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence inform() (warn/fatal/panic always print). */
void setQuiet(bool quiet);
bool quiet();

/**
 * Internal-invariant check that survives NDEBUG builds.
 *
 * Use for conditions whose violation means gpsm itself is broken;
 * evaluates the condition exactly once.
 */
#define GPSM_ASSERT(cond, ...)                                            \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::gpsm::panic(                                                \
                "assertion '%s' failed at %s:%d %s", #cond, __FILE__,     \
                __LINE__, ::gpsm::detail::format("" __VA_ARGS__).c_str());\
        }                                                                 \
    } while (0)

} // namespace gpsm

#endif // GPSM_UTIL_LOGGING_HH
