/**
 * @file
 * Strict numeric parsing for CLI arguments and environment variables.
 *
 * The strto* family silently accepts garbage ("banana" parses as 0,
 * "12cows" parses as 12), which turns a typo'd flag into a perfectly
 * plausible — and wrong — run. These helpers demand that the whole
 * string is consumed, reject range overflow, and call fatal() with the
 * offending flag name so the process exits nonzero with a clear
 * message instead of running the wrong experiment.
 */

#ifndef GPSM_UTIL_PARSE_HH
#define GPSM_UTIL_PARSE_HH

#include <cstdint>
#include <string>

namespace gpsm
{

/**
 * Parse @p text as a base-10 unsigned 64-bit integer. @p what names
 * the flag or environment variable for the error message ("--jobs",
 * "GPSM_BENCH_DIVISOR"). Leading/trailing whitespace, empty strings,
 * signs, partial parses and overflow are all fatal().
 */
std::uint64_t parseU64(const std::string &text, const char *what);

/** parseU64 narrowed to unsigned; overflow past UINT_MAX is fatal(). */
unsigned parseUnsigned(const std::string &text, const char *what);

/** Strict signed 64-bit variant (accepts a leading '-'). */
std::int64_t parseI64(const std::string &text, const char *what);

/** Strict finite double (rejects "nan"/"inf" and partial parses). */
double parseDouble(const std::string &text, const char *what);

} // namespace gpsm

#endif // GPSM_UTIL_PARSE_HH
