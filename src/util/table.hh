/**
 * @file
 * Aligned text tables with a parallel CSV rendering.
 *
 * Every bench binary reports its figure/table through TableWriter so the
 * human-readable table and the machine-readable CSV stay in sync.
 */

#ifndef GPSM_UTIL_TABLE_HH
#define GPSM_UTIL_TABLE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace gpsm
{

/**
 * Row/column table builder.
 *
 * Cells are strings; numeric helpers format doubles with fixed
 * precision. Column widths are computed at print time.
 */
class TableWriter
{
  public:
    explicit TableWriter(std::string title) : _title(std::move(title)) {}

    /** Set the header row. Must be called before addRow. */
    void setHeader(std::vector<std::string> cols);

    /** Append one row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Format helpers. */
    static std::string num(double v, int precision = 3);
    static std::string pct(double fraction, int precision = 1);
    static std::string speedup(double v) { return num(v, 2) + "x"; }

    /** Render the aligned text table. */
    std::string text() const;

    /** Render as CSV (header + rows, comma-separated, quoted as needed). */
    std::string csv() const;

    /** Print text table followed by a "# CSV" block to @p os. */
    void print(std::ostream &os, bool with_csv = true) const;

    size_t rows() const { return body.size(); }
    const std::string &title() const { return _title; }

  private:
    std::string _title;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> body;
};

} // namespace gpsm

#endif // GPSM_UTIL_TABLE_HH
