/**
 * @file
 * Compressed Sparse Row graph representation (paper §2.1.1).
 */

#ifndef GPSM_GRAPH_CSR_HH
#define GPSM_GRAPH_CSR_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/histogram.hh"

namespace gpsm::graph
{

/** Vertex identifier. */
using NodeId = std::uint32_t;
/** Edge array index. */
using EdgeIdx = std::uint64_t;
/** Edge weight (SSSP values array). */
using Weight = std::uint32_t;

constexpr NodeId invalidNode = ~0u;

class CsrGraph;

/**
 * Transpose: reverse every edge (weights follow). The result's vertex
 * array indexes *in*-neighbors of the original graph — the substrate
 * for pull-mode kernels (direction-optimized BFS, pull PageRank).
 */
CsrGraph transpose(const CsrGraph &graph);

/**
 * Directed graph in CSR form: the vertex array holds cumulative
 * neighbor counts (offsets), the edge array holds neighbor IDs, and an
 * optional values array holds per-edge weights. This mirrors the
 * paper's Fig. 5 layout exactly; the per-vertex property array is owned
 * by the executing kernel, not the graph.
 */
class CsrGraph
{
  public:
    CsrGraph() = default;

    /**
     * Assemble from prebuilt arrays (see Builder for the usual path).
     * offsets.size() must equal num_nodes + 1 and offsets.back() must
     * equal neighbors.size(); weights must be empty or edge-sized.
     */
    CsrGraph(std::vector<EdgeIdx> offsets, std::vector<NodeId> neighbors,
             std::vector<Weight> weights);

    NodeId numNodes() const
    {
        return offsets.empty()
                   ? 0
                   : static_cast<NodeId>(offsets.size() - 1);
    }
    EdgeIdx numEdges() const { return neighbors.size(); }
    bool weighted() const { return !weights.empty(); }

    EdgeIdx outDegree(NodeId v) const
    {
        return offsets[v + 1] - offsets[v];
    }

    std::span<const NodeId>
    neighborsOf(NodeId v) const
    {
        return {neighbors.data() + offsets[v],
                static_cast<size_t>(outDegree(v))};
    }

    /** @name Raw arrays (loaded into simulated memory by SimView) @{ */
    const std::vector<EdgeIdx> &vertexArray() const { return offsets; }
    const std::vector<NodeId> &edgeArray() const { return neighbors; }
    const std::vector<Weight> &valuesArray() const { return weights; }
    /** @} */

    double
    averageDegree() const
    {
        return numNodes() == 0 ? 0.0
                               : static_cast<double>(numEdges()) /
                                     numNodes();
    }

    /** Degree distribution (log2 buckets). */
    Log2Histogram degreeHistogram() const;

    /**
     * In-memory footprint of the CSR arrays plus an 8-byte-per-vertex
     * property array, matching the paper's Table 2 accounting.
     *
     * @param with_values Include the values (weights) array.
     */
    std::uint64_t footprintBytes(bool with_values) const;

    /** Structural sanity check (sorted offsets, targets in range). */
    void validate() const;

    /** "name: N nodes, M edges, avg degree d" */
    std::string summary(const std::string &name) const;

  private:
    std::vector<EdgeIdx> offsets;
    std::vector<NodeId> neighbors;
    std::vector<Weight> weights;
};

} // namespace gpsm::graph

#endif // GPSM_GRAPH_CSR_HH
