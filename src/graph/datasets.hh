/**
 * @file
 * The paper's evaluation datasets (Table 2), reproduced as scaled
 * synthetic networks with matching structural character.
 */

#ifndef GPSM_GRAPH_DATASETS_HH
#define GPSM_GRAPH_DATASETS_HH

#include <string>
#include <vector>

#include "graph/csr.hh"

namespace gpsm::graph
{

/**
 * One Table 2 dataset. The paper's node/edge counts are kept as
 * reference metadata; generation shrinks both by `1/scaleDivisor`
 * while preserving the degree structure, hub locality and community
 * character that drive the paper's results.
 */
struct DatasetSpec
{
    std::string shortName;   ///< "kron", "twit", "web", "wiki"
    std::string paperName;   ///< "Kronecker25 (Kr25)", ...
    std::uint64_t paperNodes;
    std::uint64_t paperEdges;
    /** Structural knobs (see generators.hh). */
    bool kronecker = false;  ///< R-MAT with permuted IDs
    double theta = 0.65;
    double hubLocality = 1.0;
    double community = 0.0;
};

/** The four Table 2 networks. */
std::vector<DatasetSpec> standardDatasets();

/** Look up a standard dataset by short name (fatal if unknown). */
DatasetSpec datasetByName(const std::string &short_name);

/**
 * Generate the scaled instance of @p spec.
 *
 * @param scale_divisor Paper size divided by this (default 128 keeps
 *        every bench run in seconds; tests use larger divisors).
 * @param weighted Generate the SSSP values array.
 * @param seed Generator seed.
 */
CsrGraph makeDataset(const DatasetSpec &spec,
                     std::uint64_t scale_divisor = 128,
                     bool weighted = false, std::uint64_t seed = 1);

} // namespace gpsm::graph

#endif // GPSM_GRAPH_DATASETS_HH
