/**
 * @file
 * Deterministic parallelism for dataset construction.
 *
 * Generators, the CSR builder and the reorder pass split their work
 * into contiguous chunks executed on a transient worker pool. The
 * chunking is designed so output is byte-identical to the serial code
 * at any worker count: RNG-consuming loops hand each chunk the exact
 * stream position serial execution would have reached (Rng::discard),
 * and array-writing loops partition their output disjointly.
 */

#ifndef GPSM_GRAPH_PARALLEL_HH
#define GPSM_GRAPH_PARALLEL_HH

#include <cstddef>
#include <functional>

namespace gpsm::graph
{

/**
 * Override the build worker count; 0 restores the default (the
 * GPSM_BUILD_JOBS environment variable, else one worker per hardware
 * thread). Not thread-safe against a concurrently running build.
 */
void setBuildJobs(unsigned jobs);

/** Resolved dataset-construction worker count (always >= 1). */
unsigned buildJobs();

/**
 * Number of chunks to split @p work items into: buildJobs() capped so
 * every chunk gets at least @p min_grain items; 1 means run inline.
 */
unsigned planChunks(std::size_t work, std::size_t min_grain);

/**
 * Invoke fn(begin, end) over contiguous chunks covering [0, total).
 * chunks <= 1 runs fn(0, total) inline on the calling thread;
 * otherwise the chunks run on a transient pool. fn must confine its
 * writes to state owned by its chunk.
 */
void runChunks(std::size_t total, unsigned chunks,
               const std::function<void(std::size_t, std::size_t)> &fn);

/** runChunks with the chunk count planned from @p total itself. */
void forBuildChunks(std::size_t total, std::size_t min_grain,
                    const std::function<void(std::size_t,
                                             std::size_t)> &fn);

} // namespace gpsm::graph

#endif // GPSM_GRAPH_PARALLEL_HH
