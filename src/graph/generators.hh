/**
 * @file
 * Deterministic synthetic network generators.
 *
 * Stand-ins for the paper's datasets (Table 2), which are not
 * redistributable here: Kronecker25 is replaced by a Graph500-style
 * R-MAT with permuted vertex IDs (no community structure — hot vertices
 * scattered across the ID space, which is why DBG helps it, §5.2);
 * Twitter / Sd1-Arc / Wikipedia are replaced by Chung-Lu power-law
 * generators with tunable *hub locality* (hot vertices already adjacent
 * in ID space) and *community* structure (neighbors close in ID space),
 * reproducing why DBG barely changes those networks.
 */

#ifndef GPSM_GRAPH_GENERATORS_HH
#define GPSM_GRAPH_GENERATORS_HH

#include <cstdint>
#include <vector>

#include "graph/builder.hh"
#include "graph/csr.hh"

namespace gpsm::graph
{

/** Graph500-style R-MAT (Kronecker) generator parameters. */
struct RmatParams
{
    /** Number of vertices = 2^scale. */
    unsigned scale = 18;
    /** Directed edges per vertex. */
    double edgeFactor = 16.0;
    /** Quadrant probabilities (d = 1-a-b-c). */
    double a = 0.57;
    double b = 0.19;
    double c = 0.19;
    /**
     * Shuffle vertex IDs after generation, as Graph500 specifies.
     * Scatters the hubs across the ID space, destroying any
     * ID-locality — the paper's "little to no community structure".
     */
    bool permute = true;
    std::uint64_t seed = 1;
};

std::vector<Edge> rmatEdges(const RmatParams &params);

/** Chung-Lu power-law generator parameters. */
struct PowerLawParams
{
    NodeId nodes = 1u << 18;
    double avgDegree = 16.0;
    /**
     * Zipf exponent of the expected-degree sequence (by rank);
     * 0.5-0.8 covers social/web networks.
     */
    double theta = 0.65;
    /**
     * 1.0: rank == vertex ID, so hubs occupy a dense low-ID prefix
     * (Twitter/Wikipedia crawl orderings); 0.0: ranks randomly
     * assigned (no hub locality).
     */
    double hubLocality = 1.0;
    /**
     * Probability that an edge's destination is drawn from the
     * source's ID-neighborhood instead of the global degree
     * distribution (community / spatial structure).
     */
    double community = 0.0;
    /** ID-distance window for community edges. */
    NodeId communityWindow = 4096;
    std::uint64_t seed = 1;
};

std::vector<Edge> powerLawEdges(const PowerLawParams &params);

/** Uniform-random (Erdős–Rényi-style) edges; locality-free control. */
std::vector<Edge> uniformEdges(NodeId nodes, double avg_degree,
                               std::uint64_t seed);

} // namespace gpsm::graph

#endif // GPSM_GRAPH_GENERATORS_HH
