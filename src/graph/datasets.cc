/**
 * @file
 * Dataset presets.
 *
 * Structural characters (motivating §5.2's DBG observations):
 * - kron: synthetic power-law with *no* ID locality (Graph500 permutes
 *   vertex IDs), so DBG recovers substantial locality.
 * - twit: social network; crawl order clusters hubs at low IDs, strong
 *   hub locality, moderate community structure.
 * - web: host-lexicographic ordering gives very strong community
 *   structure with moderate hub locality.
 * - wiki: smaller social-ish network, strong hub locality.
 */

#include "graph/datasets.hh"

#include <cmath>

#include "graph/builder.hh"
#include "graph/generators.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace gpsm::graph
{

std::vector<DatasetSpec>
standardDatasets()
{
    std::vector<DatasetSpec> specs;
    specs.push_back(DatasetSpec{"kron", "Kronecker25 (Kr25)",
                                34'000'000ull, 1'050'000'000ull,
                                /*kronecker=*/true, 0.0, 0.0, 0.0});
    specs.push_back(DatasetSpec{"twit", "Twitter (Twit)",
                                53'000'000ull, 1'940'000'000ull,
                                /*kronecker=*/false, 0.70, 0.95, 0.30});
    specs.push_back(DatasetSpec{"web", "Sd1 Arc (Web)", 95'000'000ull,
                                1'960'000'000ull,
                                /*kronecker=*/false, 0.60, 0.60, 0.70});
    specs.push_back(DatasetSpec{"wiki", "Wikipedia (Wiki)",
                                12'000'000ull, 378'000'000ull,
                                /*kronecker=*/false, 0.65, 0.90, 0.40});
    return specs;
}

DatasetSpec
datasetByName(const std::string &short_name)
{
    for (const DatasetSpec &spec : standardDatasets())
        if (spec.shortName == short_name)
            return spec;
    fatal("unknown dataset '%s' (kron/twit/web/wiki)",
          short_name.c_str());
}

CsrGraph
makeDataset(const DatasetSpec &spec, std::uint64_t scale_divisor,
            bool weighted, std::uint64_t seed)
{
    GPSM_ASSERT(scale_divisor > 0);
    const std::uint64_t nodes64 = spec.paperNodes / scale_divisor;
    if (nodes64 < 1024 || nodes64 > 0xffffffffull)
        fatal("dataset %s at divisor %llu yields unusable node count",
              spec.shortName.c_str(),
              static_cast<unsigned long long>(scale_divisor));
    const double avg_degree = static_cast<double>(spec.paperEdges) /
                              static_cast<double>(spec.paperNodes);

    std::vector<Edge> edges;
    NodeId n;
    if (spec.kronecker) {
        RmatParams params;
        params.scale = ceilLog2(nodes64);
        params.edgeFactor = avg_degree;
        params.seed = seed;
        n = 1u << params.scale;
        edges = rmatEdges(params);
    } else {
        PowerLawParams params;
        params.nodes = static_cast<NodeId>(nodes64);
        params.avgDegree = avg_degree;
        params.theta = spec.theta;
        params.hubLocality = spec.hubLocality;
        params.community = spec.community;
        params.communityWindow =
            std::max<NodeId>(256, static_cast<NodeId>(nodes64 / 256));
        params.seed = seed;
        n = params.nodes;
        edges = powerLawEdges(params);
    }

    Builder builder(n);
    if (weighted)
        return builder.fromEdgesWeighted(edges, /*max_weight=*/255,
                                         seed ^ 0x5eed);
    return builder.fromEdges(edges);
}

} // namespace gpsm::graph
