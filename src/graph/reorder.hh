/**
 * @file
 * Vertex reordering: Degree-Based Grouping (Faldu et al., the paper's
 * §5.1.2 preprocessing step) and comparison orderings.
 */

#ifndef GPSM_GRAPH_REORDER_HH
#define GPSM_GRAPH_REORDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.hh"

namespace gpsm::graph
{

/** Available reordering methods. */
enum class ReorderMethod : std::uint8_t
{
    /** Identity (original vertex IDs). */
    None,
    /**
     * Degree-Based Grouping: coarse 8-bin bucketing by out-degree with
     * thresholds {32d, 16d, 8d, 4d, 2d, d, d/2, 0} (d = average
     * degree), stable within bins. Hot vertices end up in a dense
     * low-ID prefix while most intra-bin structure survives.
     */
    Dbg,
    /** Full descending sort by degree (destroys community structure). */
    SortByDegree,
    /** HubSort: vertices with degree > d sorted first, rest stable. */
    HubSort,
    /** Random permutation (worst-case control). */
    Random,
};

const char *reorderMethodName(ReorderMethod method);

/**
 * Compute the new-ID mapping for @p method: result[old_id] == new_id.
 * Deterministic; Random uses @p seed.
 */
std::vector<NodeId> reorderMapping(const CsrGraph &graph,
                                   ReorderMethod method,
                                   std::uint64_t seed = 1);

/** DBG bin thresholds as multiples of the average degree. */
std::vector<double> dbgThresholds();

/**
 * Per-vertex DBG bin index (0 = hottest); exposed for tests and for
 * the selective-THP advisor's hot-prefix estimate.
 */
std::vector<std::uint8_t> dbgBins(const CsrGraph &graph);

/**
 * Apply a mapping: relabel every vertex and edge target, rebuilding
 * the CSR (edges of the same new source keep ascending new-target
 * order is NOT guaranteed; order follows old adjacency order).
 * Weights follow their edges.
 */
CsrGraph applyMapping(const CsrGraph &graph,
                      const std::vector<NodeId> &mapping);

/**
 * Fraction of all edge endpoints landing on the first @p prefix
 * vertices (new ID order) — the "hot prefix coverage" used to size
 * selective THP regions.
 */
double hotPrefixCoverage(const CsrGraph &graph, NodeId prefix);

/**
 * Preprocessing cost model for the paper's overhead discussion
 * (§5.1.2): DBG traverses the vertex set three times.
 */
std::uint64_t dbgTraversalWork(const CsrGraph &graph);

} // namespace gpsm::graph

#endif // GPSM_GRAPH_REORDER_HH
