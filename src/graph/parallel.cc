/**
 * @file
 * Build-parallelism knob implementation.
 */

#include "graph/parallel.hh"

#include <algorithm>
#include <cstdlib>

#include "util/thread_pool.hh"

namespace gpsm::graph
{

namespace
{

unsigned jobsOverride = 0;

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("GPSM_BUILD_JOBS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
    }
    return util::ThreadPool::hardwareThreads();
}

} // anonymous namespace

void
setBuildJobs(unsigned jobs)
{
    jobsOverride = jobs;
}

unsigned
buildJobs()
{
    if (jobsOverride != 0)
        return jobsOverride;
    static const unsigned resolved = defaultJobs();
    return resolved;
}

unsigned
planChunks(std::size_t work, std::size_t min_grain)
{
    const unsigned jobs = buildJobs();
    const std::size_t grain = std::max<std::size_t>(min_grain, 1);
    if (jobs <= 1 || work < 2 * grain)
        return 1;
    return static_cast<unsigned>(
        std::min<std::size_t>(jobs, work / grain));
}

void
runChunks(std::size_t total, unsigned chunks,
          const std::function<void(std::size_t, std::size_t)> &fn)
{
    if (total == 0)
        return;
    if (chunks <= 1) {
        fn(0, total);
        return;
    }
    chunks = static_cast<unsigned>(
        std::min<std::size_t>(chunks, total));
    const std::size_t per = (total + chunks - 1) / chunks;
    util::ThreadPool pool(chunks);
    for (unsigned c = 0; c < chunks; ++c) {
        const std::size_t lo = static_cast<std::size_t>(c) * per;
        const std::size_t hi = std::min(total, lo + per);
        if (lo >= hi)
            break;
        pool.submit([&fn, lo, hi] { fn(lo, hi); });
    }
    pool.wait();
}

void
forBuildChunks(std::size_t total, std::size_t min_grain,
               const std::function<void(std::size_t, std::size_t)> &fn)
{
    runChunks(total, planChunks(total, min_grain), fn);
}

} // namespace gpsm::graph
