/**
 * @file
 * Graph serialization: binary CSR container and text edge lists.
 */

#ifndef GPSM_GRAPH_IO_HH
#define GPSM_GRAPH_IO_HH

#include <string>

#include "graph/csr.hh"

namespace gpsm::graph
{

/**
 * Write @p graph to @p path in the gpsm binary CSR format
 * (magic "GPSMCSR1", counts, then the raw arrays little-endian).
 */
void saveCsr(const CsrGraph &graph, const std::string &path);

/** Load a graph written by saveCsr. */
CsrGraph loadCsr(const std::string &path);

/** Size in bytes a saveCsr file for @p graph occupies (for the page
 *  cache interference model: this many bytes flow through the cache
 *  when loading from storage). */
std::uint64_t csrFileBytes(const CsrGraph &graph);

/**
 * Parse a whitespace-separated text edge list ("src dst [weight]" per
 * line, '#' comments). Node count is 1 + max id unless @p num_nodes
 * is nonzero.
 */
CsrGraph loadEdgeList(const std::string &path, NodeId num_nodes = 0);

/** Write "src dst [weight]" lines. */
void saveEdgeList(const CsrGraph &graph, const std::string &path);

} // namespace gpsm::graph

#endif // GPSM_GRAPH_IO_HH
