/**
 * @file
 * Edge-list to CSR assembly.
 */

#ifndef GPSM_GRAPH_BUILDER_HH
#define GPSM_GRAPH_BUILDER_HH

#include <cstdint>
#include <vector>

#include "graph/csr.hh"
#include "util/rng.hh"

namespace gpsm::graph
{

/** One directed edge of an edge list. */
struct Edge
{
    NodeId src;
    NodeId dst;
};

/**
 * Builds CsrGraph instances from edge lists via counting sort (linear
 * time, deterministic output order: edges keep list order within each
 * source vertex).
 */
class Builder
{
  public:
    /**
     * @param num_nodes Vertex count (targets/sources must be < this).
     * @param remove_self_loops Drop v->v edges.
     * @param dedup Drop duplicate (src,dst) pairs (keeps first).
     */
    explicit Builder(NodeId num_nodes, bool remove_self_loops = true,
                     bool dedup_edges = false)
        : numNodes(num_nodes), dropSelfLoops(remove_self_loops),
          dedup(dedup_edges)
    {
    }

    /** Build an unweighted CSR graph. */
    CsrGraph fromEdges(const std::vector<Edge> &edges) const;

    /**
     * Build a weighted CSR graph with uniform-random weights in
     * [1, max_weight], deterministic from @p seed.
     */
    CsrGraph fromEdgesWeighted(const std::vector<Edge> &edges,
                               Weight max_weight,
                               std::uint64_t seed) const;

  private:
    std::vector<Edge> filter(const std::vector<Edge> &edges) const;

    NodeId numNodes;
    bool dropSelfLoops;
    bool dedup;
};

} // namespace gpsm::graph

#endif // GPSM_GRAPH_BUILDER_HH
