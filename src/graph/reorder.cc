/**
 * @file
 * Reordering implementation.
 *
 * Binning uses in-degree: in the push-based model the property array
 * entry of vertex v is accessed once per *incoming* edge (paper §2.1.3),
 * so in-degree is the access frequency DBG wants to group by.
 */

#include "graph/reorder.hh"

#include <algorithm>
#include <numeric>

#include "graph/parallel.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace gpsm::graph
{

const char *
reorderMethodName(ReorderMethod method)
{
    switch (method) {
      case ReorderMethod::None: return "orig";
      case ReorderMethod::Dbg: return "dbg";
      case ReorderMethod::SortByDegree: return "sort";
      case ReorderMethod::HubSort: return "hubsort";
      case ReorderMethod::Random: return "random";
    }
    return "?";
}

std::vector<double>
dbgThresholds()
{
    return {32.0, 16.0, 8.0, 4.0, 2.0, 1.0, 0.5, 0.0};
}

namespace
{

std::vector<std::uint64_t>
inDegrees(const CsrGraph &graph)
{
    std::vector<std::uint64_t> indeg(graph.numNodes(), 0);
    // Target-range partition: every worker scans all edges but counts
    // only its own vertices, keeping increments race-free without
    // atomics (and identical to the serial tally).
    runChunks(graph.numNodes(),
              planChunks(graph.numEdges(), 1u << 15),
              [&](std::size_t vlo, std::size_t vhi) {
                  for (NodeId t : graph.edgeArray())
                      if (t >= vlo && t < vhi)
                          ++indeg[t];
              });
    return indeg;
}

} // anonymous namespace

std::vector<std::uint8_t>
dbgBins(const CsrGraph &graph)
{
    const std::vector<std::uint64_t> indeg = inDegrees(graph);
    const double d = graph.averageDegree();
    const std::vector<double> thr = dbgThresholds();

    std::vector<std::uint8_t> bins(graph.numNodes());
    forBuildChunks(graph.numNodes(), 1u << 14,
                   [&](std::size_t lo, std::size_t hi) {
        for (std::size_t v = lo; v < hi; ++v) {
            std::uint8_t bin =
                static_cast<std::uint8_t>(thr.size() - 1);
            for (std::uint8_t b = 0; b < thr.size(); ++b) {
                if (static_cast<double>(indeg[v]) >= thr[b] * d) {
                    bin = b;
                    break;
                }
            }
            bins[v] = bin;
        }
    });
    return bins;
}

std::vector<NodeId>
reorderMapping(const CsrGraph &graph, ReorderMethod method,
               std::uint64_t seed)
{
    const NodeId n = graph.numNodes();
    std::vector<NodeId> mapping(n);

    switch (method) {
      case ReorderMethod::None: {
        std::iota(mapping.begin(), mapping.end(), 0u);
        break;
      }
      case ReorderMethod::Dbg: {
        const std::vector<std::uint8_t> bins = dbgBins(graph);
        const size_t nbins = dbgThresholds().size();
        // Stable counting sort by bin: one pass to size bins, one to
        // place vertices (the "3 traversals" the paper counts include
        // the degree pass inside dbgBins).
        std::vector<NodeId> bin_sizes(nbins, 0);
        for (NodeId v = 0; v < n; ++v)
            ++bin_sizes[bins[v]];
        std::vector<NodeId> bin_starts(nbins, 0);
        for (size_t b = 1; b < nbins; ++b)
            bin_starts[b] = bin_starts[b - 1] + bin_sizes[b - 1];
        for (NodeId v = 0; v < n; ++v)
            mapping[v] = bin_starts[bins[v]]++;
        break;
      }
      case ReorderMethod::SortByDegree: {
        const std::vector<std::uint64_t> indeg = inDegrees(graph);
        std::vector<NodeId> order(n);
        std::iota(order.begin(), order.end(), 0u);
        std::stable_sort(order.begin(), order.end(),
                         [&](NodeId x, NodeId y) {
                             return indeg[x] > indeg[y];
                         });
        for (NodeId pos = 0; pos < n; ++pos)
            mapping[order[pos]] = pos;
        break;
      }
      case ReorderMethod::HubSort: {
        const std::vector<std::uint64_t> indeg = inDegrees(graph);
        const double d = graph.averageDegree();
        std::vector<NodeId> hubs;
        std::vector<NodeId> rest;
        for (NodeId v = 0; v < n; ++v) {
            if (static_cast<double>(indeg[v]) > d)
                hubs.push_back(v);
            else
                rest.push_back(v);
        }
        std::stable_sort(hubs.begin(), hubs.end(),
                         [&](NodeId x, NodeId y) {
                             return indeg[x] > indeg[y];
                         });
        NodeId pos = 0;
        for (NodeId v : hubs)
            mapping[v] = pos++;
        for (NodeId v : rest)
            mapping[v] = pos++;
        break;
      }
      case ReorderMethod::Random: {
        std::iota(mapping.begin(), mapping.end(), 0u);
        Rng rng(seed);
        for (NodeId i = n - 1; i > 0; --i) {
            const auto j = static_cast<NodeId>(rng.below(i + 1));
            std::swap(mapping[i], mapping[j]);
        }
        break;
      }
    }
    return mapping;
}

CsrGraph
applyMapping(const CsrGraph &graph, const std::vector<NodeId> &mapping)
{
    const NodeId n = graph.numNodes();
    if (mapping.size() != n)
        fatal("mapping size %zu != node count %u", mapping.size(), n);

    std::vector<NodeId> inverse(n, invalidNode);
    for (NodeId old_id = 0; old_id < n; ++old_id) {
        const NodeId new_id = mapping[old_id];
        if (new_id >= n || inverse[new_id] != invalidNode)
            fatal("mapping is not a permutation at old id %u", old_id);
        inverse[new_id] = old_id;
    }

    const bool weighted = graph.weighted();
    std::vector<EdgeIdx> offsets(static_cast<size_t>(n) + 1, 0);
    for (NodeId new_id = 0; new_id < n; ++new_id)
        offsets[new_id + 1] =
            offsets[new_id] + graph.outDegree(inverse[new_id]);

    std::vector<NodeId> neighbors(graph.numEdges());
    std::vector<Weight> weights(weighted ? graph.numEdges() : 0);
    // Each new_id owns the disjoint slot range
    // [offsets[new_id], offsets[new_id + 1]), so new-ID chunks write
    // without overlap.
    runChunks(n, planChunks(graph.numEdges(), 1u << 15),
              [&](std::size_t lo, std::size_t hi) {
        for (std::size_t nv = lo; nv < hi; ++nv) {
            const auto new_id = static_cast<NodeId>(nv);
            const NodeId old_id = inverse[new_id];
            EdgeIdx out = offsets[new_id];
            const EdgeIdx begin = graph.vertexArray()[old_id];
            const EdgeIdx end = graph.vertexArray()[old_id + 1];
            for (EdgeIdx e = begin; e < end; ++e, ++out) {
                neighbors[out] = mapping[graph.edgeArray()[e]];
                if (weighted)
                    weights[out] = graph.valuesArray()[e];
            }
        }
    });
    return CsrGraph(std::move(offsets), std::move(neighbors),
                    std::move(weights));
}

double
hotPrefixCoverage(const CsrGraph &graph, NodeId prefix)
{
    if (graph.numEdges() == 0)
        return 0.0;
    std::uint64_t covered = 0;
    for (NodeId t : graph.edgeArray())
        covered += t < prefix ? 1 : 0;
    return static_cast<double>(covered) /
           static_cast<double>(graph.numEdges());
}

std::uint64_t
dbgTraversalWork(const CsrGraph &graph)
{
    // Degree pass (edge scan) + binning pass + relabel pass.
    return graph.numEdges() +
           2ull * graph.numNodes();
}

} // namespace gpsm::graph
