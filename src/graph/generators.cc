/**
 * @file
 * Generator implementations.
 *
 * All three generators run chunk-parallel over the edge range while
 * staying byte-identical to serial generation: each edge consumes a
 * fixed number of RNG draws, so a chunk starting at edge i jumps a
 * private generator to the exact stream position serial execution
 * would have reached (Rng::discard) and writes its disjoint slice of
 * the pre-sized edge vector.
 */

#include "graph/generators.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/parallel.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace gpsm::graph
{

std::vector<Edge>
rmatEdges(const RmatParams &params)
{
    if (params.scale == 0 || params.scale > 30)
        fatal("rmat scale %u out of range", params.scale);
    const double d = 1.0 - params.a - params.b - params.c;
    if (d < 0.0)
        fatal("rmat quadrant probabilities exceed 1");

    const NodeId n = 1u << params.scale;
    const auto m = static_cast<std::uint64_t>(params.edgeFactor * n);
    // Each edge consumes exactly 3 draws per scale bit: the noise
    // perturbation, the quadrant pick, and the right/left pick (drawn
    // in both branches).
    const std::uint64_t draws_per_edge = 3ull * params.scale;

    const double sum_ab = params.a + params.b;
    // Right/left threshold per quadrant half, indexed by the down bit
    // (a table load compiles to a branch-free select; the down bit is
    // random, so a branch here mispredicts half the time).
    const double thr_tab[2] = {params.a / sum_ab,
                               params.c / (params.c + d)};

    std::vector<Edge> edges(m);
    forBuildChunks(m, 1u << 12, [&](std::size_t lo, std::size_t hi) {
        Rng rng(params.seed);
        rng.discard(lo * draws_per_edge);
        for (std::size_t i = lo; i < hi; ++i) {
            NodeId src = 0;
            NodeId dst = 0;
            for (unsigned bit = 0; bit < params.scale; ++bit) {
                // Slightly perturb quadrant probabilities per level,
                // as the classic R-MAT implementation does, to avoid
                // degenerate self-similarity. The right/left draw is
                // unconditional (both quadrant halves consume it), so
                // the half pick reduces to a threshold select — no
                // data-dependent branch on the random bits.
                const double noise = 0.9 + 0.2 * rng.uniform();
                const double ab = sum_ab * noise;
                const double r = rng.uniform();
                const unsigned down = r < ab ? 0u : 1u;
                const bool right = rng.uniform() > thr_tab[down];
                src = (src << 1) | down;
                dst = (dst << 1) | (right ? 1u : 0u);
            }
            edges[i] = Edge{src, dst};
        }
    });

    if (params.permute) {
        // The permutation continues the serial stream right after the
        // last edge's draws; its swap sequence is order-dependent and
        // stays serial. Applying it to the edges is draw-free.
        Rng rng(params.seed);
        rng.discard(m * draws_per_edge);
        std::vector<NodeId> perm(n);
        std::iota(perm.begin(), perm.end(), 0u);
        // Fisher-Yates with the deterministic generator.
        for (NodeId i = n - 1; i > 0; --i) {
            const auto j = static_cast<NodeId>(rng.below(i + 1));
            std::swap(perm[i], perm[j]);
        }
        forBuildChunks(m, 1u << 14,
                       [&](std::size_t lo, std::size_t hi) {
                           for (std::size_t i = lo; i < hi; ++i) {
                               Edge &e = edges[i];
                               e.src = perm[e.src];
                               e.dst = perm[e.dst];
                           }
                       });
    }
    return edges;
}

namespace
{

/**
 * Cumulative Zipf weight table for O(log n) inverse-CDF sampling.
 * ranks[k] holds the vertex ID owning popularity rank k.
 */
struct ZipfSampler
{
    std::vector<double> cdf;     // cumulative weights by rank
    std::vector<NodeId> ranks;   // rank -> vertex id
    double total = 0.0;

    ZipfSampler(NodeId n, double theta, double hub_locality, Rng &rng)
    {
        cdf.resize(n);
        // The pow evaluations dominate construction and take no
        // draws; the serial prefix accumulation afterwards keeps the
        // partial sums bit-identical to the serial single loop.
        forBuildChunks(n, 1u << 13,
                       [&](std::size_t lo, std::size_t hi) {
                           for (std::size_t k = lo; k < hi; ++k)
                               cdf[k] = std::pow(
                                   static_cast<double>(k) + 1.0,
                                   -theta);
                       });
        double acc = 0.0;
        for (NodeId k = 0; k < n; ++k) {
            acc += cdf[k];
            cdf[k] = acc;
        }
        total = acc;

        ranks.resize(n);
        std::iota(ranks.begin(), ranks.end(), 0u);
        if (hub_locality < 1.0) {
            // Displace each rank with probability (1 - locality):
            // locality 1 keeps rank k at vertex k (hubs form a dense
            // low-ID prefix); locality 0 approaches a full shuffle.
            // Draw count is data-dependent, so this stays serial.
            const double p = 1.0 - hub_locality;
            for (NodeId i = 0; i < n; ++i) {
                if (rng.chance(p)) {
                    const auto j =
                        static_cast<NodeId>(rng.below(n));
                    std::swap(ranks[i], ranks[j]);
                }
            }
        }
    }

    NodeId
    sample(Rng &rng) const
    {
        const double r = rng.uniform() * total;
        const auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
        const auto k = static_cast<size_t>(it - cdf.begin());
        return ranks[k < ranks.size() ? k : ranks.size() - 1];
    }
};

} // anonymous namespace

std::vector<Edge>
powerLawEdges(const PowerLawParams &params)
{
    const NodeId n = params.nodes;
    if (n < 2)
        fatal("power-law generator needs at least two nodes");
    const auto m = static_cast<std::uint64_t>(params.avgDegree * n);
    Rng rng(params.seed);
    ZipfSampler sampler(n, params.theta, params.hubLocality, rng);

    // Sampler construction consumes a data-dependent number of draws,
    // so chunks start from a *copy* of the post-construction
    // generator. Each edge then consumes a fixed count: the source
    // sample, plus either the community coin and window pick or the
    // coin and the second sample (the coin is skipped entirely when
    // community is 0 — the && short-circuits on the constant).
    const std::uint64_t draws_per_edge =
        params.community > 0.0 ? 3 : 2;

    std::vector<Edge> edges(m);
    forBuildChunks(m, 1u << 13, [&](std::size_t lo, std::size_t hi) {
        Rng r = rng;
        r.discard(lo * draws_per_edge);
        for (std::size_t i = lo; i < hi; ++i) {
            const NodeId src = sampler.sample(r);
            NodeId dst;
            if (params.community > 0.0 &&
                r.chance(params.community)) {
                // Destination near the source in ID space.
                const NodeId w =
                    std::max<NodeId>(params.communityWindow, 2);
                const NodeId lo_id = src > w / 2 ? src - w / 2 : 0;
                const NodeId span = std::min<NodeId>(w, n - lo_id);
                dst = lo_id + static_cast<NodeId>(r.below(span));
            } else {
                dst = sampler.sample(r);
            }
            edges[i] = Edge{src, dst};
        }
    });
    return edges;
}

std::vector<Edge>
uniformEdges(NodeId nodes, double avg_degree, std::uint64_t seed)
{
    if (nodes < 2)
        fatal("uniform generator needs at least two nodes");
    const auto m = static_cast<std::uint64_t>(avg_degree * nodes);
    std::vector<Edge> edges(m);
    forBuildChunks(m, 1u << 14, [&](std::size_t lo, std::size_t hi) {
        Rng rng(seed);
        rng.discard(lo * 2);
        for (std::size_t i = lo; i < hi; ++i) {
            edges[i] =
                Edge{static_cast<NodeId>(rng.below(nodes)),
                     static_cast<NodeId>(rng.below(nodes))};
        }
    });
    return edges;
}

} // namespace gpsm::graph
