/**
 * @file
 * Generator implementations.
 */

#include "graph/generators.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hh"
#include "util/rng.hh"

namespace gpsm::graph
{

std::vector<Edge>
rmatEdges(const RmatParams &params)
{
    if (params.scale == 0 || params.scale > 30)
        fatal("rmat scale %u out of range", params.scale);
    const double d = 1.0 - params.a - params.b - params.c;
    if (d < 0.0)
        fatal("rmat quadrant probabilities exceed 1");

    const NodeId n = 1u << params.scale;
    const auto m = static_cast<std::uint64_t>(params.edgeFactor * n);
    Rng rng(params.seed);

    std::vector<Edge> edges;
    edges.reserve(m);
    for (std::uint64_t i = 0; i < m; ++i) {
        NodeId src = 0;
        NodeId dst = 0;
        for (unsigned bit = 0; bit < params.scale; ++bit) {
            // Slightly perturb quadrant probabilities per level, as the
            // classic R-MAT implementation does, to avoid degenerate
            // self-similarity.
            const double noise = 0.9 + 0.2 * rng.uniform();
            const double ab = (params.a + params.b) * noise;
            const double a_of_ab =
                params.a / (params.a + params.b);
            const double c_of_cd = params.c / (params.c + d);
            const double r = rng.uniform();
            bool right;
            bool down;
            if (r < ab) {
                down = false;
                right = rng.uniform() > a_of_ab;
            } else {
                down = true;
                right = rng.uniform() > c_of_cd;
            }
            src = (src << 1) | (down ? 1u : 0u);
            dst = (dst << 1) | (right ? 1u : 0u);
        }
        edges.push_back(Edge{src, dst});
    }

    if (params.permute) {
        std::vector<NodeId> perm(n);
        std::iota(perm.begin(), perm.end(), 0u);
        // Fisher-Yates with the deterministic generator.
        for (NodeId i = n - 1; i > 0; --i) {
            const auto j = static_cast<NodeId>(rng.below(i + 1));
            std::swap(perm[i], perm[j]);
        }
        for (Edge &e : edges) {
            e.src = perm[e.src];
            e.dst = perm[e.dst];
        }
    }
    return edges;
}

namespace
{

/**
 * Cumulative Zipf weight table for O(log n) inverse-CDF sampling.
 * ranks[k] holds the vertex ID owning popularity rank k.
 */
struct ZipfSampler
{
    std::vector<double> cdf;     // cumulative weights by rank
    std::vector<NodeId> ranks;   // rank -> vertex id
    double total = 0.0;

    ZipfSampler(NodeId n, double theta, double hub_locality, Rng &rng)
    {
        cdf.resize(n);
        double acc = 0.0;
        for (NodeId k = 0; k < n; ++k) {
            acc += std::pow(static_cast<double>(k) + 1.0, -theta);
            cdf[k] = acc;
        }
        total = acc;

        ranks.resize(n);
        std::iota(ranks.begin(), ranks.end(), 0u);
        if (hub_locality < 1.0) {
            // Displace each rank with probability (1 - locality):
            // locality 1 keeps rank k at vertex k (hubs form a dense
            // low-ID prefix); locality 0 approaches a full shuffle.
            const double p = 1.0 - hub_locality;
            for (NodeId i = 0; i < n; ++i) {
                if (rng.chance(p)) {
                    const auto j =
                        static_cast<NodeId>(rng.below(n));
                    std::swap(ranks[i], ranks[j]);
                }
            }
        }
    }

    NodeId
    sample(Rng &rng) const
    {
        const double r = rng.uniform() * total;
        const auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
        const auto k = static_cast<size_t>(it - cdf.begin());
        return ranks[k < ranks.size() ? k : ranks.size() - 1];
    }
};

} // anonymous namespace

std::vector<Edge>
powerLawEdges(const PowerLawParams &params)
{
    const NodeId n = params.nodes;
    if (n < 2)
        fatal("power-law generator needs at least two nodes");
    const auto m = static_cast<std::uint64_t>(params.avgDegree * n);
    Rng rng(params.seed);
    ZipfSampler sampler(n, params.theta, params.hubLocality, rng);

    std::vector<Edge> edges;
    edges.reserve(m);
    for (std::uint64_t i = 0; i < m; ++i) {
        const NodeId src = sampler.sample(rng);
        NodeId dst;
        if (params.community > 0.0 && rng.chance(params.community)) {
            // Destination near the source in ID space.
            const NodeId w = std::max<NodeId>(params.communityWindow, 2);
            const NodeId lo = src > w / 2 ? src - w / 2 : 0;
            const NodeId span = std::min<NodeId>(w, n - lo);
            dst = lo + static_cast<NodeId>(rng.below(span));
        } else {
            dst = sampler.sample(rng);
        }
        edges.push_back(Edge{src, dst});
    }
    return edges;
}

std::vector<Edge>
uniformEdges(NodeId nodes, double avg_degree, std::uint64_t seed)
{
    if (nodes < 2)
        fatal("uniform generator needs at least two nodes");
    const auto m = static_cast<std::uint64_t>(avg_degree * nodes);
    Rng rng(seed);
    std::vector<Edge> edges;
    edges.reserve(m);
    for (std::uint64_t i = 0; i < m; ++i) {
        edges.push_back(Edge{static_cast<NodeId>(rng.below(nodes)),
                             static_cast<NodeId>(rng.below(nodes))});
    }
    return edges;
}

} // namespace gpsm::graph
