/**
 * @file
 * Graph IO implementation.
 */

#include "graph/io.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "graph/builder.hh"
#include "util/logging.hh"

namespace gpsm::graph
{

namespace
{

constexpr char magic[8] = {'G', 'P', 'S', 'M', 'C', 'S', 'R', '1'};

template <typename T>
void
writeVec(std::ofstream &os, const std::vector<T> &vec)
{
    const std::uint64_t count = vec.size();
    os.write(reinterpret_cast<const char *>(&count), sizeof(count));
    os.write(reinterpret_cast<const char *>(vec.data()),
             static_cast<std::streamsize>(count * sizeof(T)));
}

template <typename T>
std::vector<T>
readVec(std::ifstream &is)
{
    std::uint64_t count = 0;
    is.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!is)
        fatal("truncated CSR file (count)");
    std::vector<T> vec(count);
    is.read(reinterpret_cast<char *>(vec.data()),
            static_cast<std::streamsize>(count * sizeof(T)));
    if (!is)
        fatal("truncated CSR file (payload)");
    return vec;
}

} // anonymous namespace

void
saveCsr(const CsrGraph &graph, const std::string &path)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        fatal("cannot open '%s' for writing", path.c_str());
    os.write(magic, sizeof(magic));
    writeVec(os, graph.vertexArray());
    writeVec(os, graph.edgeArray());
    writeVec(os, graph.valuesArray());
    if (!os)
        fatal("write error on '%s'", path.c_str());
}

CsrGraph
loadCsr(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open '%s'", path.c_str());
    char got[sizeof(magic)];
    is.read(got, sizeof(got));
    if (!is || std::memcmp(got, magic, sizeof(magic)) != 0)
        fatal("'%s' is not a gpsm CSR file", path.c_str());
    auto offsets = readVec<EdgeIdx>(is);
    auto neighbors = readVec<NodeId>(is);
    auto weights = readVec<Weight>(is);
    return CsrGraph(std::move(offsets), std::move(neighbors),
                    std::move(weights));
}

std::uint64_t
csrFileBytes(const CsrGraph &graph)
{
    return sizeof(magic) + 3 * sizeof(std::uint64_t) +
           graph.vertexArray().size() * sizeof(EdgeIdx) +
           graph.edgeArray().size() * sizeof(NodeId) +
           graph.valuesArray().size() * sizeof(Weight);
}

CsrGraph
loadEdgeList(const std::string &path, NodeId num_nodes)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '%s'", path.c_str());

    std::vector<Edge> edges;
    std::vector<Weight> weights;
    bool any_weight = false;
    NodeId max_id = 0;

    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::uint64_t src;
        std::uint64_t dst;
        if (!(ls >> src >> dst))
            fatal("malformed edge line in '%s': %s", path.c_str(),
                  line.c_str());
        std::uint64_t w;
        if (ls >> w) {
            any_weight = true;
            weights.push_back(static_cast<Weight>(w));
        } else {
            weights.push_back(1);
        }
        edges.push_back(Edge{static_cast<NodeId>(src),
                             static_cast<NodeId>(dst)});
        max_id = std::max({max_id, static_cast<NodeId>(src),
                           static_cast<NodeId>(dst)});
    }

    const NodeId n =
        num_nodes != 0 ? num_nodes : (edges.empty() ? 0 : max_id + 1);
    Builder builder(n, /*remove_self_loops=*/false);
    if (!any_weight)
        return builder.fromEdges(edges);

    // Weighted: rebuild preserving the parsed weights by constructing
    // CSR manually through the builder's counting-sort logic.
    std::vector<EdgeIdx> offsets(static_cast<size_t>(n) + 1, 0);
    for (const Edge &e : edges)
        ++offsets[e.src + 1];
    for (size_t v = 1; v < offsets.size(); ++v)
        offsets[v] += offsets[v - 1];
    std::vector<NodeId> neighbors(edges.size());
    std::vector<Weight> wts(edges.size());
    std::vector<EdgeIdx> cursor(offsets.begin(), offsets.end() - 1);
    for (size_t i = 0; i < edges.size(); ++i) {
        const EdgeIdx slot = cursor[edges[i].src]++;
        neighbors[slot] = edges[i].dst;
        wts[slot] = weights[i];
    }
    return CsrGraph(std::move(offsets), std::move(neighbors),
                    std::move(wts));
}

void
saveEdgeList(const CsrGraph &graph, const std::string &path)
{
    std::ofstream os(path, std::ios::trunc);
    if (!os)
        fatal("cannot open '%s' for writing", path.c_str());
    const bool weighted = graph.weighted();
    for (NodeId v = 0; v < graph.numNodes(); ++v) {
        const EdgeIdx begin = graph.vertexArray()[v];
        const EdgeIdx end = graph.vertexArray()[v + 1];
        for (EdgeIdx e = begin; e < end; ++e) {
            os << v << ' ' << graph.edgeArray()[e];
            if (weighted)
                os << ' ' << graph.valuesArray()[e];
            os << '\n';
        }
    }
}

} // namespace gpsm::graph
