/**
 * @file
 * CsrGraph implementation.
 */

#include "graph/csr.hh"

#include <sstream>

#include "util/logging.hh"

namespace gpsm::graph
{

CsrGraph::CsrGraph(std::vector<EdgeIdx> vertex_offsets,
                   std::vector<NodeId> edge_targets,
                   std::vector<Weight> edge_weights)
    : offsets(std::move(vertex_offsets)),
      neighbors(std::move(edge_targets)),
      weights(std::move(edge_weights))
{
    validate();
}

void
CsrGraph::validate() const
{
    if (offsets.empty())
        fatal("CSR graph must have a vertex array");
    if (offsets.front() != 0)
        fatal("CSR vertex array must start at 0");
    if (offsets.back() != neighbors.size())
        fatal("CSR vertex array end (%llu) != edge count (%zu)",
              static_cast<unsigned long long>(offsets.back()),
              neighbors.size());
    for (size_t v = 0; v + 1 < offsets.size(); ++v)
        if (offsets[v] > offsets[v + 1])
            fatal("CSR vertex array not monotonic at %zu", v);
    const NodeId n = numNodes();
    for (NodeId t : neighbors)
        if (t >= n)
            fatal("CSR edge target %u out of range (%u nodes)", t, n);
    if (!weights.empty() && weights.size() != neighbors.size())
        fatal("CSR values array size mismatch");
}

Log2Histogram
CsrGraph::degreeHistogram() const
{
    Log2Histogram h;
    for (NodeId v = 0; v < numNodes(); ++v)
        h.add(outDegree(v));
    return h;
}

std::uint64_t
CsrGraph::footprintBytes(bool with_values) const
{
    std::uint64_t bytes = 0;
    bytes += offsets.size() * sizeof(EdgeIdx);
    bytes += neighbors.size() * sizeof(NodeId);
    if (with_values)
        bytes += neighbors.size() * sizeof(Weight);
    bytes += static_cast<std::uint64_t>(numNodes()) * 8; // property
    return bytes;
}

std::string
CsrGraph::summary(const std::string &name) const
{
    std::ostringstream os;
    os << name << ": " << numNodes() << " nodes, " << numEdges()
       << " edges, avg degree " << averageDegree();
    return os.str();
}

CsrGraph
transpose(const CsrGraph &graph)
{
    const NodeId n = graph.numNodes();
    const bool weighted = graph.weighted();

    std::vector<EdgeIdx> offsets(static_cast<size_t>(n) + 1, 0);
    for (NodeId t : graph.edgeArray())
        ++offsets[t + 1];
    for (size_t v = 1; v < offsets.size(); ++v)
        offsets[v] += offsets[v - 1];

    std::vector<NodeId> neighbors(graph.numEdges());
    std::vector<Weight> weights(weighted ? graph.numEdges() : 0);
    std::vector<EdgeIdx> cursor(offsets.begin(), offsets.end() - 1);
    for (NodeId u = 0; u < n; ++u) {
        const EdgeIdx begin = graph.vertexArray()[u];
        const EdgeIdx end = graph.vertexArray()[u + 1];
        for (EdgeIdx e = begin; e < end; ++e) {
            const NodeId t = graph.edgeArray()[e];
            const EdgeIdx slot = cursor[t]++;
            neighbors[slot] = u;
            if (weighted)
                weights[slot] = graph.valuesArray()[e];
        }
    }
    return CsrGraph(std::move(offsets), std::move(neighbors),
                    std::move(weights));
}

} // namespace gpsm::graph
