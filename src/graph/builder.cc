/**
 * @file
 * Builder implementation.
 *
 * CSR assembly runs chunk-parallel via a vertex-range partition: every
 * worker scans the whole filtered edge list but touches only sources
 * inside its range, so counts, cursors and neighbor slots are each
 * owned by exactly one worker and edges keep list order within every
 * source — the output is byte-identical to the serial build.
 */

#include "graph/builder.hh"

#include <algorithm>
#include <unordered_set>

#include "graph/parallel.hh"
#include "util/logging.hh"

namespace gpsm::graph
{

std::vector<Edge>
Builder::filter(const std::vector<Edge> &edges) const
{
    std::vector<Edge> out;
    out.reserve(edges.size());
    for (const Edge &e : edges) {
        if (e.src >= numNodes || e.dst >= numNodes)
            fatal("edge (%u,%u) outside %u nodes", e.src, e.dst,
                  numNodes);
        if (dropSelfLoops && e.src == e.dst)
            continue;
        out.push_back(e);
    }
    if (dedup) {
        // Key edges as 64-bit pairs; keeps first occurrence.
        std::unordered_set<std::uint64_t> seen;
        seen.reserve(out.size());
        std::vector<Edge> unique;
        unique.reserve(out.size());
        for (const Edge &e : out) {
            const std::uint64_t key =
                (static_cast<std::uint64_t>(e.src) << 32) | e.dst;
            if (seen.insert(key).second)
                unique.push_back(e);
        }
        out = std::move(unique);
    }
    return out;
}

CsrGraph
Builder::fromEdges(const std::vector<Edge> &edges) const
{
    const std::vector<Edge> es = filter(edges);
    const unsigned chunks = planChunks(es.size(), 1u << 15);

    std::vector<EdgeIdx> offsets(static_cast<size_t>(numNodes) + 1, 0);
    runChunks(numNodes, chunks,
              [&](std::size_t vlo, std::size_t vhi) {
                  for (const Edge &e : es)
                      if (e.src >= vlo && e.src < vhi)
                          ++offsets[e.src + 1];
              });
    for (size_t v = 1; v < offsets.size(); ++v)
        offsets[v] += offsets[v - 1];

    std::vector<NodeId> neighbors(es.size());
    std::vector<EdgeIdx> cursor(offsets.begin(), offsets.end() - 1);
    runChunks(numNodes, chunks,
              [&](std::size_t vlo, std::size_t vhi) {
                  for (const Edge &e : es)
                      if (e.src >= vlo && e.src < vhi)
                          neighbors[cursor[e.src]++] = e.dst;
              });

    return CsrGraph(std::move(offsets), std::move(neighbors), {});
}

CsrGraph
Builder::fromEdgesWeighted(const std::vector<Edge> &edges,
                           Weight max_weight, std::uint64_t seed) const
{
    if (max_weight == 0)
        fatal("max edge weight must be positive");
    const std::vector<Edge> es = filter(edges);
    const unsigned chunks = planChunks(es.size(), 1u << 15);

    std::vector<EdgeIdx> offsets(static_cast<size_t>(numNodes) + 1, 0);
    runChunks(numNodes, chunks,
              [&](std::size_t vlo, std::size_t vhi) {
                  for (const Edge &e : es)
                      if (e.src >= vlo && e.src < vhi)
                          ++offsets[e.src + 1];
              });
    for (size_t v = 1; v < offsets.size(); ++v)
        offsets[v] += offsets[v - 1];

    // Weights follow filtered-list order (exactly one draw per edge),
    // so they are precomputed by list index — each chunk jumps its
    // generator to its first index — then placed with the neighbor.
    std::vector<Weight> drawn(es.size());
    forBuildChunks(es.size(), 1u << 15,
                   [&](std::size_t lo, std::size_t hi) {
                       Rng rng(seed);
                       rng.discard(lo);
                       for (std::size_t i = lo; i < hi; ++i)
                           drawn[i] = static_cast<Weight>(
                               rng.below(max_weight) + 1);
                   });

    std::vector<NodeId> neighbors(es.size());
    std::vector<Weight> weights(es.size());
    std::vector<EdgeIdx> cursor(offsets.begin(), offsets.end() - 1);
    runChunks(numNodes, chunks,
              [&](std::size_t vlo, std::size_t vhi) {
                  for (std::size_t i = 0; i < es.size(); ++i) {
                      const Edge &e = es[i];
                      if (e.src < vlo || e.src >= vhi)
                          continue;
                      const EdgeIdx slot = cursor[e.src]++;
                      neighbors[slot] = e.dst;
                      weights[slot] = drawn[i];
                  }
              });

    return CsrGraph(std::move(offsets), std::move(neighbors),
                    std::move(weights));
}

} // namespace gpsm::graph
