/**
 * @file
 * Builder implementation.
 */

#include "graph/builder.hh"

#include <algorithm>
#include <unordered_set>

#include "util/logging.hh"

namespace gpsm::graph
{

std::vector<Edge>
Builder::filter(const std::vector<Edge> &edges) const
{
    std::vector<Edge> out;
    out.reserve(edges.size());
    for (const Edge &e : edges) {
        if (e.src >= numNodes || e.dst >= numNodes)
            fatal("edge (%u,%u) outside %u nodes", e.src, e.dst,
                  numNodes);
        if (dropSelfLoops && e.src == e.dst)
            continue;
        out.push_back(e);
    }
    if (dedup) {
        // Key edges as 64-bit pairs; keeps first occurrence.
        std::unordered_set<std::uint64_t> seen;
        seen.reserve(out.size());
        std::vector<Edge> unique;
        unique.reserve(out.size());
        for (const Edge &e : out) {
            const std::uint64_t key =
                (static_cast<std::uint64_t>(e.src) << 32) | e.dst;
            if (seen.insert(key).second)
                unique.push_back(e);
        }
        out = std::move(unique);
    }
    return out;
}

CsrGraph
Builder::fromEdges(const std::vector<Edge> &edges) const
{
    const std::vector<Edge> es = filter(edges);

    std::vector<EdgeIdx> offsets(static_cast<size_t>(numNodes) + 1, 0);
    for (const Edge &e : es)
        ++offsets[e.src + 1];
    for (size_t v = 1; v < offsets.size(); ++v)
        offsets[v] += offsets[v - 1];

    std::vector<NodeId> neighbors(es.size());
    std::vector<EdgeIdx> cursor(offsets.begin(), offsets.end() - 1);
    for (const Edge &e : es)
        neighbors[cursor[e.src]++] = e.dst;

    return CsrGraph(std::move(offsets), std::move(neighbors), {});
}

CsrGraph
Builder::fromEdgesWeighted(const std::vector<Edge> &edges,
                           Weight max_weight, std::uint64_t seed) const
{
    if (max_weight == 0)
        fatal("max edge weight must be positive");
    const std::vector<Edge> es = filter(edges);

    std::vector<EdgeIdx> offsets(static_cast<size_t>(numNodes) + 1, 0);
    for (const Edge &e : es)
        ++offsets[e.src + 1];
    for (size_t v = 1; v < offsets.size(); ++v)
        offsets[v] += offsets[v - 1];

    std::vector<NodeId> neighbors(es.size());
    std::vector<Weight> weights(es.size());
    std::vector<EdgeIdx> cursor(offsets.begin(), offsets.end() - 1);
    Rng rng(seed);
    for (const Edge &e : es) {
        const EdgeIdx slot = cursor[e.src]++;
        neighbors[slot] = e.dst;
        weights[slot] = static_cast<Weight>(rng.below(max_weight) + 1);
    }

    return CsrGraph(std::move(offsets), std::move(neighbors),
                    std::move(weights));
}

} // namespace gpsm::graph
