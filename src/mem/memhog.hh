/**
 * @file
 * Memory-pressure generator (the paper's memhog + mlock combination).
 */

#ifndef GPSM_MEM_MEMHOG_HH
#define GPSM_MEM_MEMHOG_HH

#include <cstdint>
#include <vector>

#include "mem/types.hh"

namespace gpsm::mem
{

class MemoryNode;

/**
 * Occupies a fixed amount of node memory with pinned (mlocked) pages,
 * exactly like the paper's `memhog M` + `mlock` methodology (§4.3.1):
 * the pages can be neither swapped nor migrated, so the application is
 * left with only `node - M` usable bytes.
 *
 * Memory is grabbed largest-block-first so memhog itself introduces no
 * fragmentation; fragmentation is injected separately by Fragmenter.
 */
class Memhog : public PageClient
{
  public:
    explicit Memhog(MemoryNode &node);
    ~Memhog() override;

    Memhog(const Memhog &) = delete;
    Memhog &operator=(const Memhog &) = delete;

    /**
     * Pin @p bytes of memory.
     *
     * @return Bytes actually pinned (less when the node runs out).
     */
    std::uint64_t occupy(std::uint64_t bytes);

    /**
     * Pin memory until only @p bytes remain free on the node — the
     * natural way to express the paper's "WSS + slack" scenarios.
     */
    std::uint64_t occupyAllBut(std::uint64_t bytes);

    /** Release everything held. */
    void release();

    std::uint64_t heldBytes() const;

    /** @name PageClient @{ */
    void migratePage(FrameNum from, FrameNum to) override;
    const char *clientName() const override { return "memhog"; }
    /** @} */

  private:
    MemoryNode &node;
    std::uint16_t clientId;
    std::vector<FrameNum> blocks;
    std::uint64_t heldFrames = 0;
};

} // namespace gpsm::mem

#endif // GPSM_MEM_MEMHOG_HH
