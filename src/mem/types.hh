/**
 * @file
 * Shared physical-memory types: frame numbers, migratetypes, and the
 * client interface through which page owners participate in migration,
 * reclaim and swap.
 */

#ifndef GPSM_MEM_TYPES_HH
#define GPSM_MEM_TYPES_HH

#include <cstdint>

namespace gpsm::mem
{

/** Physical frame number, in base-page units within one memory node. */
using FrameNum = std::uint64_t;

constexpr FrameNum invalidFrame = ~0ull;

/**
 * Mobility class of an allocated block, mirroring Linux migratetypes.
 *
 * Movable pages can be relocated by compaction (user data). Unmovable
 * pages model kernel allocations that pin their frame forever (the
 * paper's non-movable fragmentation source). Pinned pages model
 * mlock()ed user memory: they cannot be swapped, and our compactor also
 * skips them (memhog occupies whole blocks, so their movability never
 * matters for huge page formation).
 */
enum class Migratetype : std::uint8_t
{
    Movable,
    Unmovable,
    Pinned,
};

const char *migratetypeName(Migratetype mt);

/**
 * Interface implemented by owners of physical frames (address spaces,
 * the page cache, pinned-memory holders).
 *
 * The memory node calls back through this interface when it wants to
 * move or take back a frame. Implementations must keep their own
 * mapping metadata (e.g. page-table entries) consistent.
 */
class PageClient
{
  public:
    virtual ~PageClient() = default;

    /**
     * The frame backing one of this client's pages moved from @p from
     * to @p to during compaction. Data is logically copied by the
     * caller; the client must retarget its mapping.
     */
    virtual void migratePage(FrameNum from, FrameNum to) = 0;

    /**
     * Ask the client to give up @p frame for swap-out. On success the
     * client has unmapped the page, recorded it as swapped, and freed
     * the frame back to the node before returning.
     *
     * @retval true the frame was released.
     * @retval false the page cannot be evicted (e.g. mlocked).
     */
    virtual bool evictPage(FrameNum frame) { (void)frame; return false; }

    /** Debug name used in allocator dumps. */
    virtual const char *clientName() const = 0;
};

/**
 * What it took to satisfy (or fail) an allocation request.
 *
 * The VM layer converts these event counts into simulated cycles; the
 * memory layer itself is time-free.
 */
struct AllocOutcome
{
    FrameNum frame = invalidFrame;
    unsigned order = 0;
    bool success = false;

    /** Pages copied by direct compaction on this request's path. */
    std::uint64_t migratedPages = 0;
    /** Page-cache pages reclaimed to satisfy this request. */
    std::uint64_t reclaimedPages = 0;
    /** Pages swapped out to satisfy this request. */
    std::uint64_t swappedPages = 0;
    /** Number of failed compaction scans (charged as wasted effort). */
    std::uint64_t compactionFailures = 0;
};

/**
 * Interface for pools that can surrender clean pages under pressure
 * (the page cache). reclaim(n) frees up to n frames and returns how
 * many were actually released.
 */
class Reclaimable
{
  public:
    virtual ~Reclaimable() = default;
    virtual std::uint64_t reclaim(std::uint64_t frames) = 0;
};

} // namespace gpsm::mem

#endif // GPSM_MEM_TYPES_HH
