/**
 * @file
 * Shared physical-memory types: frame numbers, migratetypes, and the
 * client interface through which page owners participate in migration,
 * reclaim and swap.
 */

#ifndef GPSM_MEM_TYPES_HH
#define GPSM_MEM_TYPES_HH

#include <cstdint>

namespace gpsm::mem
{

/** Physical frame number, in base-page units within one memory node. */
using FrameNum = std::uint64_t;

constexpr FrameNum invalidFrame = ~0ull;

/**
 * Frame-number base of the second (remote) memory node on a two-node
 * machine. Node 0 owns [0, frames0); node 1 numbers its frames from
 * remoteNodeFrameBase so every FrameNum identifies its node. The base
 * is a power of two far above any node size and aligned to every
 * buddy order in use, so order-alignment checks and XOR buddy math on
 * global frame numbers behave identically on both nodes.
 */
constexpr FrameNum remoteNodeFrameBase = 1ull << 32;

/** Which node a (global) frame number belongs to: 0 local, 1 remote. */
constexpr unsigned
nodeOfFrame(FrameNum frame)
{
    return frame != invalidFrame && frame >= remoteNodeFrameBase ? 1u
                                                                 : 0u;
}

/**
 * Mobility class of an allocated block, mirroring Linux migratetypes.
 *
 * Movable pages can be relocated by compaction (user data). Unmovable
 * pages model kernel allocations that pin their frame forever (the
 * paper's non-movable fragmentation source). Pinned pages model
 * mlock()ed user memory: they cannot be swapped, and our compactor also
 * skips them (memhog occupies whole blocks, so their movability never
 * matters for huge page formation).
 */
enum class Migratetype : std::uint8_t
{
    Movable,
    Unmovable,
    Pinned,
};

const char *migratetypeName(Migratetype mt);

/**
 * Where policy-eligible anonymous allocations land on a two-node
 * machine (numactl analogues). FirstTouch is the single-node-
 * equivalent default: every page lands on node 0 and the remote tier
 * never charges.
 */
enum class NumaPlacement : std::uint8_t
{
    /** Allocate on the faulting (local) node only — the default. */
    FirstTouch,
    /** Alternate nodes per huge-page-sized region (numactl -i). */
    Interleave,
    /** Local first, spill base pages to the remote node when full. */
    PreferredLocal,
    /** Everything on the remote node (numactl --membind=1). */
    RemoteOnly,
};

const char *numaPlacementName(NumaPlacement p);

/**
 * Replacement policy for resident file pages in the address-space
 * cache (AddressSpaceCache). Clock is the Linux-like default: a hand
 * sweeps the resident ring, giving referenced pages a second chance.
 * Lru evicts the least recently touched page exactly.
 */
enum class EvictionKind : std::uint8_t
{
    Clock,
    Lru,
};

const char *evictionKindName(EvictionKind kind);

/** Identifier of a file object inside an AddressSpaceCache. */
using FileId = std::uint32_t;

constexpr FileId invalidFile = ~0u;

/**
 * Interface implemented by owners of physical frames (address spaces,
 * the page cache, pinned-memory holders).
 *
 * The memory node calls back through this interface when it wants to
 * move or take back a frame. Implementations must keep their own
 * mapping metadata (e.g. page-table entries) consistent.
 */
class PageClient
{
  public:
    virtual ~PageClient() = default;

    /**
     * The frame backing one of this client's pages moved from @p from
     * to @p to during compaction. Data is logically copied by the
     * caller; the client must retarget its mapping.
     */
    virtual void migratePage(FrameNum from, FrameNum to) = 0;

    /**
     * Ask the client to give up @p frame for swap-out. On success the
     * client has unmapped the page, recorded it as swapped, and freed
     * the frame back to the node before returning.
     *
     * @retval true the frame was released.
     * @retval false the page cannot be evicted (e.g. mlocked).
     */
    virtual bool evictPage(FrameNum frame) { (void)frame; return false; }

    /** Debug name used in allocator dumps. */
    virtual const char *clientName() const = 0;
};

/**
 * What it took to satisfy (or fail) an allocation request.
 *
 * The VM layer converts these event counts into simulated cycles; the
 * memory layer itself is time-free.
 */
struct AllocOutcome
{
    FrameNum frame = invalidFrame;
    unsigned order = 0;
    bool success = false;

    /** Pages copied by direct compaction on this request's path. */
    std::uint64_t migratedPages = 0;
    /** Page-cache pages reclaimed to satisfy this request. */
    std::uint64_t reclaimedPages = 0;
    /** Pages swapped out to satisfy this request. */
    std::uint64_t swappedPages = 0;
    /** Number of failed compaction scans (charged as wasted effort). */
    std::uint64_t compactionFailures = 0;
};

/**
 * Interface for pools that can surrender clean pages under pressure
 * (the page cache). reclaim(n) frees up to n frames and returns how
 * many were actually released.
 */
class Reclaimable
{
  public:
    virtual ~Reclaimable() = default;
    virtual std::uint64_t reclaim(std::uint64_t frames) = 0;
};

} // namespace gpsm::mem

#endif // GPSM_MEM_TYPES_HH
