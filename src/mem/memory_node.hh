/**
 * @file
 * One NUMA node's physical memory: buddy allocator plus the escalation
 * machinery Linux runs when an allocation cannot be satisfied directly
 * (page-cache reclaim, direct compaction, swap-out).
 */

#ifndef GPSM_MEM_MEMORY_NODE_HH
#define GPSM_MEM_MEMORY_NODE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "mem/buddy_allocator.hh"
#include "mem/types.hh"
#include "obs/hooks.hh"
#include "util/stats.hh"
#include "util/units.hh"

namespace gpsm::mem
{

class Compactor;

/**
 * Narrow fault-injection hook threaded through MemoryNode::allocate().
 *
 * The fault layer (fault::FaultSession) implements this to (a) apply
 * scheduled events lazily at the next allocation — the only point at
 * which changed physical-memory state becomes observable — and (b)
 * veto individual huge-order requests inside a failure window. With no
 * interceptor installed the allocation path is bit-identical to the
 * un-hooked build.
 */
class AllocationInterceptor
{
  public:
    virtual ~AllocationInterceptor() = default;

    /** Called at the top of every allocate(), before any attempt. */
    virtual void onAllocate() = 0;

    /**
     * Should this huge-order request be failed artificially? Called
     * once per huge-order allocate(); a true return fails the request
     * fast, exactly like a watermark rejection.
     */
    virtual bool dropHugeAllocation() = 0;
};

/**
 * Physical memory of one NUMA node.
 *
 * All sizes are in base pages (frames). The node is time-free: callers
 * receive an AllocOutcome describing the work performed (pages
 * migrated/reclaimed/swapped) and convert it into simulated cycles.
 */
class MemoryNode
{
  public:
    struct Params
    {
        /** Node capacity in bytes (rounded down to whole frames). */
        std::uint64_t bytes = 1_GiB;
        /** Base page size in bytes (power of two). */
        std::uint64_t basePageBytes = 4_KiB;
        /** log2(huge page / base page); 9 for x86 4KB/2MB. */
        unsigned hugeOrder = 9;
        /**
         * Huge-page allocation watermark: requests of hugeOrder fail
         * fast (no compaction, no reclaim) once satisfying them would
         * push free memory below this level. Models Linux's GFP
         * watermarks plus deferred compaction, which make high-order
         * allocations unreliable under memory pressure — the paper
         * empirically measured ~2.5GB of a 64GB node as the headroom
         * needed for dependable THP allocation (§4.3.1). Base-page
         * allocations are exempt, as in Linux. 0 disables the check.
         */
        std::uint64_t hugeWatermarkBytes = 0;

        /**
         * Giant (1GB-class) pages, hugetlbfs-style: log2(giant/base)
         * and the number of giant pages reserved at "boot". The pool
         * is carved out of pristine memory at construction (so it is
         * immune to later fragmentation, like hugetlbfs reservations)
         * and handed out only through allocGiantPage().
         */
        unsigned giantOrder = 0;
        std::uint64_t giantPoolPages = 0;
    };

    /**
     * @param params Node geometry.
     * @param frame_base Global number of this node's first frame: 0
     *        for the local node, remoteNodeFrameBase for the second
     *        node of a two-node machine. Every FrameNum this node
     *        hands out carries the base, so frame numbers are
     *        machine-global and identify their owning node.
     */
    explicit MemoryNode(const Params &params, FrameNum frame_base = 0);
    ~MemoryNode();

    MemoryNode(const MemoryNode &) = delete;
    MemoryNode &operator=(const MemoryNode &) = delete;

    /** @name Client registry @{ */
    std::uint16_t registerClient(PageClient *client);
    PageClient *client(std::uint16_t id) const;
    /** @} */

    /** Register a pool willing to surrender pages under pressure. */
    void addReclaimable(Reclaimable *pool);

    /**
     * Install (or, with nullptr, remove) the fault-injection hook.
     * At most one interceptor is supported; the caller owns it and
     * must uninstall it before destruction.
     */
    void setInterceptor(AllocationInterceptor *hook)
    {
        interceptor = hook;
    }

    /**
     * Install (or, with nullptr, remove) the telemetry trace hook;
     * direct-compaction passes are reported through it. Same contract
     * as the fault interceptor: one hook, caller-owned, observation-
     * only.
     */
    void setTraceHook(obs::TraceHook *hook) { traceHook = hook; }

    /** Allocation request with Linux-like escalation switches. */
    struct Request
    {
        unsigned order = 0;
        Migratetype mt = Migratetype::Movable;
        std::uint16_t client = 0;
        /** Reclaim page-cache pages when the free lists come up empty. */
        bool mayReclaim = true;
        /** Run direct compaction (huge-page requests). */
        bool mayCompact = false;
        /** Swap out movable pages as a last resort (order-0 requests). */
        bool maySwap = false;
    };

    /**
     * Allocate one block, escalating per the request flags:
     * free lists -> reclaim -> compaction -> swap. The outcome records
     * the work done even when the request ultimately fails.
     */
    AllocOutcome allocate(const Request &req);

    /** Return a block to the buddy. */
    void free(FrameNum head);

    /**
     * Record that @p frame holds an evictable (swappable) page. Called
     * by address spaces for unpinned anonymous pages; entries are
     * validated lazily at swap time.
     */
    void noteSwappable(FrameNum frame);

    /** @name Giant-page pool (hugetlbfs analogue) @{ */

    /** Head frame of a reserved giant page, or invalidFrame. */
    FrameNum allocGiantPage();
    /** Return a giant page to the pool. */
    void freeGiantPage(FrameNum head);
    unsigned giantOrder() const { return giantOrd; }
    std::uint64_t giantPageBytes() const
    {
        return pageBytes << giantOrd;
    }
    std::uint64_t giantPagesFree() const { return giantPool.size(); }
    std::uint64_t giantPagesTotal() const { return giantTotal; }
    /** @} */

    /** @name Geometry and state queries @{ */
    std::uint64_t basePageBytes() const { return pageBytes; }
    std::uint64_t hugePageBytes() const
    {
        return pageBytes << hugeOrd;
    }
    unsigned hugeOrder() const { return hugeOrd; }
    FrameNum frameBase() const { return alloc->frameBase(); }
    std::uint64_t totalBytes() const { return alloc->frames() * pageBytes; }
    std::uint64_t freeBytes() const { return alloc->freeFrames() * pageBytes; }
    std::uint64_t freeHugeRegions() const
    {
        return alloc->freeBlocksAt(hugeOrd);
    }
    double fragmentationLevel() const { return alloc->fragmentationLevel(); }
    /** @} */

    BuddyAllocator &buddy() { return *alloc; }
    const BuddyAllocator &buddy() const { return *alloc; }

    /** Register all node + buddy counters under @p stats. */
    void registerStats(StatSet &stats, const std::string &prefix) const;

    /** @name Event counters @{ */
    mutable Counter injectedHugeFailures;
    mutable Counter watermarkFailures;
    mutable Counter reclaimedPages;
    mutable Counter swapOuts;
    mutable Counter compactionRuns;
    mutable Counter compactionPagesMigrated;
    mutable Counter compactionFails;
    mutable Counter oomFailures;
    /** @} */

  private:
    friend class Compactor;

    /** Try to reclaim at least @p frames; @return frames reclaimed. */
    std::uint64_t reclaimFrames(std::uint64_t frames);

    /** Swap out movable pages until one frame frees; @return count. */
    std::uint64_t swapOutOne();

    std::uint64_t pageBytes;
    unsigned hugeOrd;
    unsigned giantOrd = 0;
    std::uint64_t watermarkFrames;

    std::vector<FrameNum> giantPool;
    std::uint64_t giantTotal = 0;

    std::unique_ptr<BuddyAllocator> alloc;
    std::unique_ptr<Compactor> compactor;

    std::vector<PageClient *> clients;
    std::vector<Reclaimable *> reclaimables;
    AllocationInterceptor *interceptor = nullptr;
    obs::TraceHook *traceHook = nullptr;

    /** FIFO of possibly-swappable frames (validated lazily). */
    std::deque<FrameNum> swappable;
};

} // namespace gpsm::mem

#endif // GPSM_MEM_MEMORY_NODE_HH
