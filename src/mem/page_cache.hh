/**
 * @file
 * OS page cache model for single-use file data (paper §4.3).
 */

#ifndef GPSM_MEM_PAGE_CACHE_HH
#define GPSM_MEM_PAGE_CACHE_HH

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "mem/types.hh"
#include "util/stats.hh"

namespace gpsm::mem
{

class MemoryNode;

/**
 * Models the page cache occupying free memory while graph files are
 * loaded from storage.
 *
 * Each cached page takes one movable frame. Pages are clean by
 * definition (the application only reads the input files), so reclaim
 * simply drops the oldest pages. The paper's observation: unless the
 * cache is bypassed (direct I/O) or placed remotely (tmpfs on the other
 * node), these single-use pages consume exactly the free memory that
 * huge-page allocation needed.
 */
class PageCache : public PageClient, public Reclaimable
{
  public:
    explicit PageCache(MemoryNode &node);
    ~PageCache() override;

    PageCache(const PageCache &) = delete;
    PageCache &operator=(const PageCache &) = delete;

    /**
     * Cache @p bytes of file data read from storage.
     *
     * Caching is best-effort: it stops (without escalation) when no
     * free frame is available, like readahead under pressure.
     *
     * @return Bytes actually cached.
     */
    std::uint64_t cacheFileData(std::uint64_t bytes);

    /** Drop every cached page (the /proc/sys/vm/drop_caches knob). */
    void dropAll();

    std::uint64_t cachedBytes() const;
    std::uint64_t cachedPages() const { return frames.size(); }

    /** @name Reclaimable @{ */
    std::uint64_t reclaim(std::uint64_t frames) override;
    /** @} */

    /** @name PageClient @{ */
    void migratePage(FrameNum from, FrameNum to) override;
    const char *clientName() const override { return "pagecache"; }
    /** @} */

    Counter pagesCached;
    Counter pagesDropped;

  private:
    MemoryNode &node;
    std::uint16_t clientId;

    /** FIFO of cached frames plus an index for O(1) migration fixup. */
    std::deque<FrameNum> lru;
    std::unordered_map<FrameNum, bool> frames;
};

} // namespace gpsm::mem

#endif // GPSM_MEM_PAGE_CACHE_HH
