/**
 * @file
 * OS page cache model for single-use file data (paper §4.3).
 */

#ifndef GPSM_MEM_PAGE_CACHE_HH
#define GPSM_MEM_PAGE_CACHE_HH

#include <cstdint>

#include "mem/addr_space_cache.hh"
#include "mem/types.hh"
#include "util/stats.hh"

namespace gpsm::mem
{

class MemoryNode;

/**
 * Models the page cache occupying free memory while graph files are
 * loaded from storage.
 *
 * Each cached page takes one movable frame. Pages are clean by
 * definition (the application only reads the input files), so reclaim
 * simply drops them. The paper's observation: unless the cache is
 * bypassed (direct I/O) or placed remotely (tmpfs on the other node),
 * these single-use pages consume exactly the free memory that
 * huge-page allocation needed.
 *
 * This class is a thin facade over the machine-wide AddressSpaceCache:
 * the staged input data lives in one file object of the shared cache,
 * so load-time pages and out-of-core file mappings compete under the
 * same eviction policy and the same reclaim path. Byte accounting is
 * exact — the final page of a non-page-aligned load is clamped to the
 * requested bytes (caching 100 bytes reports 100 cached bytes while
 * still occupying one frame).
 */
class PageCache
{
  public:
    explicit PageCache(MemoryNode &node,
                       EvictionKind kind = EvictionKind::Clock);

    PageCache(const PageCache &) = delete;
    PageCache &operator=(const PageCache &) = delete;

    /**
     * Cache @p bytes of file data read from storage.
     *
     * Caching is best-effort: it stops (without escalation) when no
     * free frame is available, like readahead under pressure.
     *
     * @return Bytes actually cached (exact, final page clamped).
     */
    std::uint64_t cacheFileData(std::uint64_t bytes);

    /** Drop every cached page (the /proc/sys/vm/drop_caches knob). */
    void dropAll();

    /** Exact bytes of staged file data currently resident. */
    std::uint64_t cachedBytes() const;
    std::uint64_t cachedPages() const;

    /** Evict up to @p frames staged pages through the shared policy. */
    std::uint64_t reclaim(std::uint64_t frames);

    /** Structural self-check of the underlying cache. */
    void checkInvariants() const { cache_.checkInvariants(); }

    /** The machine-wide cache this facade stages into. */
    AddressSpaceCache &addressSpace() { return cache_; }
    const AddressSpaceCache &addressSpace() const { return cache_; }

  private:
    AddressSpaceCache cache_;
    FileId stagingFile;
    std::uint64_t nextPage = 0;

  public:
    /** Aliases of the shared cache's counters (stat registration). */
    Counter &pagesCached;
    Counter &pagesDropped;
};

} // namespace gpsm::mem

#endif // GPSM_MEM_PAGE_CACHE_HH
