/**
 * @file
 * AddressSpaceCache implementation.
 */

#include "mem/addr_space_cache.hh"

#include "util/logging.hh"

namespace gpsm::mem
{

const char *
evictionKindName(EvictionKind kind)
{
    switch (kind) {
      case EvictionKind::Clock: return "clock";
      case EvictionKind::Lru: return "lru";
    }
    return "?";
}

// ---------------------------------------------------------------------
// ClockPolicy

void
ClockPolicy::inserted(std::uint64_t key)
{
    GPSM_ASSERT(pos.find(key) == pos.end());
    // The hand is left alone even when parked at end() (empty ring, or
    // the tail was just evicted): pickVictim() wraps end() to begin(),
    // so the sweep resumes at the oldest page. Re-pointing the hand at
    // the new tail would make the just-inserted page (reference bit
    // still clear) the immediate next victim — evict-most-recently-
    // faulted, not CLOCK.
    ring.push_back({key, false});
    pos.emplace(key, std::prev(ring.end()));
}

void
ClockPolicy::touched(std::uint64_t key)
{
    const auto it = pos.find(key);
    GPSM_ASSERT(it != pos.end());
    it->second->referenced = true;
}

void
ClockPolicy::removed(std::uint64_t key)
{
    const auto it = pos.find(key);
    GPSM_ASSERT(it != pos.end());
    if (hand == it->second)
        ++hand;
    ring.erase(it->second);
    pos.erase(it);
}

std::uint64_t
ClockPolicy::pickVictim()
{
    if (ring.empty())
        return noVictim;
    for (;;) {
        if (hand == ring.end())
            hand = ring.begin();
        if (hand->referenced) {
            hand->referenced = false; // second chance
            ++hand;
            continue;
        }
        const std::uint64_t key = hand->key;
        const auto victim = hand;
        ++hand;
        pos.erase(key);
        ring.erase(victim);
        return key;
    }
}

// ---------------------------------------------------------------------
// LruPolicy

void
LruPolicy::inserted(std::uint64_t key)
{
    GPSM_ASSERT(pos.find(key) == pos.end());
    order.push_front(key);
    pos.emplace(key, order.begin());
}

void
LruPolicy::touched(std::uint64_t key)
{
    const auto it = pos.find(key);
    GPSM_ASSERT(it != pos.end());
    order.splice(order.begin(), order, it->second);
}

void
LruPolicy::removed(std::uint64_t key)
{
    const auto it = pos.find(key);
    GPSM_ASSERT(it != pos.end());
    order.erase(it->second);
    pos.erase(it);
}

std::uint64_t
LruPolicy::pickVictim()
{
    if (order.empty())
        return noVictim;
    const std::uint64_t key = order.back();
    order.pop_back();
    pos.erase(key);
    return key;
}

std::unique_ptr<EvictionPolicy>
makeEvictionPolicy(EvictionKind kind)
{
    switch (kind) {
      case EvictionKind::Clock:
        return std::make_unique<ClockPolicy>();
      case EvictionKind::Lru:
        return std::make_unique<LruPolicy>();
    }
    fatal("unknown eviction kind %d", static_cast<int>(kind));
}

// ---------------------------------------------------------------------
// AddressSpaceCache

AddressSpaceCache::AddressSpaceCache(MemoryNode &node_, EvictionKind kind)
    : node(node_), evictionKind(kind), policy_(makeEvictionPolicy(kind))
{
    clientId = node.registerClient(this);
    node.addReclaimable(this);
}

AddressSpaceCache::~AddressSpaceCache()
{
    // The FileMappers (the address space owning the PTEs) may already
    // be gone: SimMachine destroys the vm layer before the mem layer.
    detachMappers();
    for (FileId f = 0; f < files.size(); ++f)
        if (files[f] != nullptr)
            dropFile(f, /*invalidateTlb=*/false);
}

void
AddressSpaceCache::detachMappers()
{
    for (const auto &fo : files) {
        if (fo == nullptr)
            continue;
        fo->pages.forEach([](std::uint64_t, CachedPage &pg) {
            pg.mapper = nullptr;
        });
    }
}

FileId
AddressSpaceCache::createFile(std::string name)
{
    auto fo = std::make_unique<FileObject>();
    fo->name = std::move(name);
    if (!freeFileIds.empty()) {
        const FileId id = freeFileIds.back();
        freeFileIds.pop_back();
        GPSM_ASSERT(files[id] == nullptr);
        files[id] = std::move(fo);
        return id;
    }
    files.push_back(std::move(fo));
    return static_cast<FileId>(files.size() - 1);
}

std::uint64_t
AddressSpaceCache::destroyFile(FileId file, bool invalidateTlb)
{
    const std::uint64_t dropped = dropFile(file, invalidateTlb);
    files[file].reset();
    freeFileIds.push_back(file);
    return dropped;
}

AddressSpaceCache::FileObject &
AddressSpaceCache::fileOf(FileId file)
{
    GPSM_ASSERT(file < files.size() && files[file] != nullptr,
                "bad file id");
    return *files[file];
}

const AddressSpaceCache::FileObject &
AddressSpaceCache::fileOf(FileId file) const
{
    GPSM_ASSERT(file < files.size() && files[file] != nullptr,
                "bad file id");
    return *files[file];
}

void
AddressSpaceCache::insertPage(FileId file, std::uint64_t index,
                              CachedPage page)
{
    FileObject &fo = fileOf(file);
    const FrameNum frame = page.frame;
    residentBytes_ += page.bytes;
    fo.pages.insert(index, page);
    frameMap.emplace(frame, keyOf(file, index));
    policy_->inserted(keyOf(file, index));
    ++pagesCached;
}

AddressSpaceCache::PopulateResult
AddressSpaceCache::populate(FileId file, std::uint64_t startPage,
                            std::uint64_t bytes)
{
    PopulateResult res;
    if (bytes == 0)
        return res;
    const std::uint64_t page = node.basePageBytes();
    const std::uint64_t want = (bytes + page - 1) / page;

    // Best-effort, no escalation: a full node simply stops the staging
    // loop, exactly like opportunistic readahead giving up.
    for (std::uint64_t i = 0; i < want; ++i) {
        const FrameNum f =
            node.buddy().allocate(0, Migratetype::Movable, clientId);
        if (f == invalidFrame)
            break;
        CachedPage pg;
        pg.frame = f;
        // Clamp the final page to the requested bytes so occupancy is
        // exact (caching 100 bytes accounts 100, not 4096).
        pg.bytes = static_cast<std::uint32_t>(
            i + 1 == want ? bytes - i * page : page);
        insertPage(file, startPage + i, pg);
        ++res.pages;
        res.bytes += pg.bytes;
    }
    return res;
}

FileFaultResult
AddressSpaceCache::faultPage(FileId file, std::uint64_t index,
                             bool write, std::uint64_t vpn,
                             FileMapper *mapper)
{
    FileFaultResult res;
    FileObject &fo = fileOf(file);
    GPSM_ASSERT(fo.pages.find(index) == nullptr,
                "faultPage on a resident page");

    // Full escalation: reclaim may call straight back into this
    // cache's reclaim() (we have not inserted the new page yet, so
    // reentrancy is safe), and swap may push anonymous pages out.
    const std::uint64_t wb0 = writebacks.value();
    MemoryNode::Request req;
    req.order = 0;
    req.mt = Migratetype::Movable;
    req.client = clientId;
    req.mayReclaim = true;
    req.mayCompact = false;
    req.maySwap = true;
    const AllocOutcome out = node.allocate(req);
    res.writebackPages = writebacks.value() - wb0;
    res.reclaimedPages = out.reclaimedPages;
    res.swappedPages = out.swappedPages;
    if (!out.success)
        return res;

    CachedPage pg;
    pg.frame = out.frame;
    pg.state = write ? FilePageState::Dirty : FilePageState::Clean;
    pg.bytes = static_cast<std::uint32_t>(node.basePageBytes());
    pg.vpn = vpn;
    pg.mapper = mapper;
    insertPage(file, index, pg);

    // Sparse-file model: a page that was never written back zero-fills
    // for free; one that was written back must be read from storage.
    if (fo.onDisk.find(index) != nullptr) {
        res.storageRead = true;
        ++storageReads;
    }
    res.frame = out.frame;
    res.success = true;
    return res;
}

void
AddressSpaceCache::notePageAccess(FileId file, std::uint64_t index,
                                  bool write)
{
    FileObject &fo = fileOf(file);
    CachedPage *pg = fo.pages.find(index);
    GPSM_ASSERT(pg != nullptr, "access to a non-resident file page");
    policy_->touched(keyOf(file, index));
    if (write && pg->state == FilePageState::Clean)
        pg->state = FilePageState::Dirty;
}

bool
AddressSpaceCache::evictOne()
{
    const std::uint64_t key = policy_->pickVictim();
    if (key == EvictionPolicy::noVictim)
        return false;
    const FileId file = fileOfKey(key);
    const std::uint64_t index = indexOfKey(key);
    FileObject &fo = fileOf(file);
    CachedPage *pg = fo.pages.find(index);
    GPSM_ASSERT(pg != nullptr, "policy victim not resident");

    if (pg->state == FilePageState::Dirty) {
        // Dirty -> Writeback -> on disk. The write-out itself is
        // instantaneous here (time-free layer); the MMU charges
        // fileMapWritebackCycles per counted page.
        pg->state = FilePageState::Writeback;
        if (fo.onDisk.find(index) == nullptr)
            fo.onDisk.insert(index, 1);
        ++writebacks;
    }
    if (pg->mapper != nullptr)
        pg->mapper->unmapFilePage(pg->vpn, /*invalidateTlb=*/true);
    frameMap.erase(pg->frame);
    node.free(pg->frame);
    residentBytes_ -= pg->bytes;
    fo.pages.erase(index);
    ++pagesDropped;
    ++evictions;
    return true;
}

std::uint64_t
AddressSpaceCache::reclaim(std::uint64_t frames)
{
    std::uint64_t got = 0;
    while (got < frames && evictOne())
        ++got;
    return got;
}

std::uint64_t
AddressSpaceCache::dropFile(FileId file, bool invalidateTlb)
{
    FileObject &fo = fileOf(file);

    struct Victim
    {
        std::uint64_t index;
        FrameNum frame;
        std::uint64_t vpn;
        FileMapper *mapper;
        std::uint32_t bytes;
    };
    std::vector<Victim> victims;
    victims.reserve(fo.pages.size());
    fo.pages.forEach([&](std::uint64_t index, CachedPage &pg) {
        victims.push_back({index, pg.frame, pg.vpn, pg.mapper, pg.bytes});
    });

    for (const Victim &v : victims) {
        policy_->removed(keyOf(file, v.index));
        if (v.mapper != nullptr)
            v.mapper->unmapFilePage(v.vpn, invalidateTlb);
        frameMap.erase(v.frame);
        node.free(v.frame);
        residentBytes_ -= v.bytes;
        fo.pages.erase(v.index);
        ++pagesDropped;
    }
    // The file's contents are discarded with it (munmap without
    // msync): forget the on-disk shadow too.
    fo.onDisk.clear();
    return victims.size();
}

void
AddressSpaceCache::migratePage(FrameNum from, FrameNum to)
{
    const auto it = frameMap.find(from);
    GPSM_ASSERT(it != frameMap.end(),
                "migratePage for a frame the cache does not own");
    const std::uint64_t key = it->second;
    CachedPage *pg = fileOf(fileOfKey(key)).pages.find(indexOfKey(key));
    GPSM_ASSERT(pg != nullptr && pg->frame == from);
    // In-place fixup: the policy is keyed by (file, index), so the
    // page keeps its ring/recency position and nothing goes stale.
    pg->frame = to;
    frameMap.erase(it);
    frameMap.emplace(to, key);
    if (pg->mapper != nullptr)
        pg->mapper->retargetFilePage(pg->vpn, to);
}

std::uint64_t
AddressSpaceCache::residentPagesOf(FileId file) const
{
    return fileOf(file).pages.size();
}

std::uint64_t
AddressSpaceCache::residentBytesOf(FileId file) const
{
    std::uint64_t bytes = 0;
    fileOf(file).pages.forEach(
        [&](std::uint64_t, const CachedPage &pg) { bytes += pg.bytes; });
    return bytes;
}

bool
AddressSpaceCache::isResident(FileId file, std::uint64_t index) const
{
    return fileOf(file).pages.find(index) != nullptr;
}

FilePageState
AddressSpaceCache::pageState(FileId file, std::uint64_t index) const
{
    const CachedPage *pg = fileOf(file).pages.find(index);
    GPSM_ASSERT(pg != nullptr, "pageState of a non-resident page");
    return pg->state;
}

bool
AddressSpaceCache::isOnDisk(FileId file, std::uint64_t index) const
{
    return fileOf(file).onDisk.find(index) != nullptr;
}

void
AddressSpaceCache::checkInvariants() const
{
    std::uint64_t pages = 0;
    std::uint64_t bytes = 0;
    for (const auto &fo : files) {
        if (fo == nullptr)
            continue;
        pages += fo->pages.size();
        fo->pages.forEach([&](std::uint64_t, const CachedPage &pg) {
            bytes += pg.bytes;
            GPSM_ASSERT(pg.frame != invalidFrame);
            const auto it = frameMap.find(pg.frame);
            GPSM_ASSERT(it != frameMap.end(),
                        "resident page missing from frame map");
        });
    }
    GPSM_ASSERT(pages == frameMap.size(),
                "frame map out of sync with resident pages");
    GPSM_ASSERT(pages == policy_->size(),
                "eviction policy out of sync with resident pages");
    GPSM_ASSERT(bytes == residentBytes_, "resident byte account drift");
}

} // namespace gpsm::mem
