/**
 * @file
 * Non-movable memory fragmentation injector (the paper's `frag` tool).
 */

#ifndef GPSM_MEM_FRAGMENTER_HH
#define GPSM_MEM_FRAGMENTER_HH

#include <cstdint>
#include <vector>

#include "mem/types.hh"

namespace gpsm::mem
{

class MemoryNode;

/**
 * Reproduces the paper's custom `frag` program (§4.4.1): allocate huge
 * blocks of *non-movable* memory until F% of the available memory is
 * held, split each block into base pages, then free every page except
 * the first. The surviving unmovable page at each huge-page-aligned
 * region head makes that region permanently ineligible for huge pages —
 * compaction cannot move it.
 */
class Fragmenter : public PageClient
{
  public:
    explicit Fragmenter(MemoryNode &node);
    ~Fragmenter() override;

    Fragmenter(const Fragmenter &) = delete;
    Fragmenter &operator=(const Fragmenter &) = delete;

    /**
     * Fragment @p level (0.0–1.0) of the currently free memory.
     *
     * @return Number of huge-page regions poisoned.
     */
    std::uint64_t fragment(double level);

    /** Free all retained pages, restoring the regions. */
    void release();

    std::uint64_t retainedPages() const { return retained.size(); }

    /** @name PageClient @{ */
    void migratePage(FrameNum from, FrameNum to) override;
    const char *clientName() const override { return "fragmenter"; }
    /** @} */

  private:
    MemoryNode &node;
    std::uint16_t clientId;
    /** One retained (unmovable) frame per poisoned region. */
    std::vector<FrameNum> retained;
};

} // namespace gpsm::mem

#endif // GPSM_MEM_FRAGMENTER_HH
