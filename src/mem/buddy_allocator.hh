/**
 * @file
 * Binary buddy allocator over one memory node's physical frames.
 *
 * This reproduces the structural behaviour of Linux's zoned buddy
 * allocator that the paper's huge-page availability arguments rest on:
 * power-of-two blocks with aligned buddies, split on demand from the
 * smallest sufficient order, and eager coalescing on free. Huge pages
 * are order `hugeOrder()` blocks; a node has a free huge-page region iff
 * the buddy has a free block of at least that order.
 *
 * Internally the allocator is O(1) in block size: only head frames
 * carry metadata (body state is derived, never written), buddy-free
 * tests read one bit of a per-order pair bitmap, and free-block /
 * per-region occupancy queries read cached counters. See DESIGN.md
 * §5f for the invariants.
 */

#ifndef GPSM_MEM_BUDDY_ALLOCATOR_HH
#define GPSM_MEM_BUDDY_ALLOCATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/types.hh"
#include "util/stats.hh"

namespace gpsm::mem
{

/**
 * Buddy allocator state plus per-frame metadata.
 *
 * Frames are identified by FrameNum in [frameBase(), frameBase() +
 * frames()). A block of order k covers 2^k frames and is aligned to
 * 2^k. The allocator tracks, per head frame, the block's order,
 * migratetype and owning client id; body frames carry no state (their
 * membership is derived from the head's order), so allocating or
 * freeing a block never touches its 2^order - 1 body frames.
 *
 * Three auxiliary structures keep every query off the frame array:
 *
 *  - Per-order XOR-buddy pair bitmaps (sv6 style): one bit per buddy
 *    pair at each order, flipped whenever a block of that order is
 *    attached to or detached from its free list. Eager coalescing
 *    guarantees at most one member of a pair is free below maxOrder,
 *    so while freeing a block the bit *is* "my buddy is free" — the
 *    coalesce test is a single bit read instead of a metadata probe.
 *  - Per-order free-block counters, so freeBlocksAt / freeBlocksAtLeast
 *    / largestFreeOrder / fragmentationLevel never walk a free list.
 *  - Per-maxOrder-region frame-class counters (free / movable /
 *    unmovable / pinned frames plus movable huge-block count), so the
 *    compactor's candidate scan is O(regions), not O(blocks).
 *
 * On a two-node machine the remote node's allocator runs with
 * frame_base = remoteNodeFrameBase, so its FrameNums are globally
 * unique and carry their node identity. The base is aligned to every
 * representable order, so alignment and buddy-XOR math agree between
 * the global and node-local numberings. Internals are node-local
 * (0-based); conversion happens at the public boundary.
 */
class BuddyAllocator
{
  public:
    /**
     * @param frames Total frames managed (need not be a power of two).
     * @param max_order Largest block order (the huge-page order).
     * @param frame_base Global number of this node's first frame
     *        (0 for the local node, remoteNodeFrameBase for node 1).
     */
    BuddyAllocator(std::uint64_t frames, unsigned max_order,
                   FrameNum frame_base = 0);

    BuddyAllocator(const BuddyAllocator &) = delete;
    BuddyAllocator &operator=(const BuddyAllocator &) = delete;

    /**
     * Allocate one block of exactly @p order, splitting larger blocks
     * if needed (smallest-sufficient-order policy).
     *
     * @param order Block order requested.
     * @param mt Mobility class recorded on the block.
     * @param client Owner id recorded on the block (see MemoryNode).
     * @return Head frame, or invalidFrame when no block of any order
     *         >= @p order is free.
     */
    FrameNum allocate(unsigned order, Migratetype mt,
                      std::uint16_t client);

    /**
     * Allocate a specific free block (used by the compactor to claim a
     * region it just emptied, and by tests).
     *
     * @return true when the exact block [head, head+2^order) was free
     *         and is now allocated.
     */
    bool allocateExact(FrameNum head, unsigned order, Migratetype mt,
                       std::uint16_t client);

    /**
     * Free the block headed at @p head. The block's recorded order is
     * used; freeing a non-head or free frame panics. Buddies coalesce
     * eagerly up to maxOrder.
     */
    void free(FrameNum head);

    /**
     * Split one allocated block of order >= 1 headed at @p head into
     * two allocated buddies of order-1 (fragmenter building block;
     * mirrors Linux split_page()). Metadata (mt, client) is copied.
     */
    void splitAllocated(FrameNum head);

    /** @name Queries @{ */
    std::uint64_t frames() const { return nframes; }
    /** Global frame number of this node's first frame. */
    FrameNum frameBase() const { return fbase; }
    unsigned maxOrder() const { return maxOrd; }
    std::uint64_t freeFrames() const { return nfree; }
    std::uint64_t allocatedFrames() const { return nframes - nfree; }

    /** Number of free blocks at exactly @p order (cached, O(1)). */
    std::uint64_t freeBlocksAt(unsigned order) const;

    /** Number of free blocks of order >= @p order. */
    std::uint64_t freeBlocksAtLeast(unsigned order) const;

    /** Largest order with a free block, or -1 when empty. */
    int largestFreeOrder() const;

    /**
     * True when frame is inside any allocated block. Frames outside
     * this node's range are simply "not allocated here" (stale swap
     * queue entries probe across nodes), not an error.
     */
    bool isAllocated(FrameNum frame) const;

    /** True when @p frame heads an allocated block (range-tolerant). */
    bool isAllocatedHead(FrameNum frame) const;

    /** Order of the allocated block headed at @p frame (panics else). */
    unsigned orderOf(FrameNum frame) const;

    /** Migratetype of the allocated block headed at @p frame. */
    Migratetype migratetypeOf(FrameNum frame) const;

    /** Owner id of the allocated block headed at @p frame. */
    std::uint16_t clientOf(FrameNum frame) const;

    /**
     * Head frame of the allocated block containing @p frame
     * (invalidFrame when the frame is free).
     */
    FrameNum headOf(FrameNum frame) const;

    /**
     * The unique block (free or allocated) containing @p frame.
     * Found by descending the order hierarchy from maxOrder — O(log)
     * in node size, independent of block size.
     */
    struct BlockInfo
    {
        FrameNum head;
        unsigned order;
        bool free;
    };

    BlockInfo blockOf(FrameNum frame) const;
    /** @} */

    /**
     * Cached per-region frame-class counters, maintained on every
     * allocate/free/split. Lets the compactor rank candidate regions
     * without touching any frame metadata.
     */
    struct RegionCounts
    {
        std::uint64_t freeFrames = 0;
        std::uint64_t movableFrames = 0;
        std::uint64_t unmovableFrames = 0;
        std::uint64_t pinnedFrames = 0;
        /** Movable allocated blocks of order maxOrder in the region. */
        std::uint32_t movableHugeBlocks = 0;
    };

    /** Counters for full region @p region_index < regions(). */
    const RegionCounts &regionCounts(std::uint64_t region_index) const;

    /**
     * Per-maxOrder-region summary used by the compactor and by
     * fragmentation metrics: counts of free / movable / unmovable /
     * pinned frames within the aligned region containing @p frame.
     */
    struct RegionSummary
    {
        std::uint64_t freeFrames = 0;
        std::uint64_t movableFrames = 0;
        std::uint64_t unmovableFrames = 0;
        std::uint64_t pinnedFrames = 0;
        /** Heads of movable allocated blocks inside the region. */
        std::vector<FrameNum> movableHeads;
    };

    RegionSummary summarizeRegion(FrameNum region_head) const;

    /**
     * Buffer-reusing variant: counts come from the cached region
     * counters; only the movable-head walk touches block metadata.
     * @p out.movableHeads keeps its capacity across calls.
     */
    void summarizeRegion(FrameNum region_head, RegionSummary &out) const;

    /** Number of maxOrder regions fully contained in the node. */
    std::uint64_t regions() const { return nframes >> maxOrd; }

    /**
     * Fraction of free memory that does not belong to any free
     * maxOrder block — the paper's "fragmentation level" measured on
     * the current allocator state.
     */
    double fragmentationLevel() const;

    /** Consistency check used by tests; panics on violation. */
    void checkInvariants() const;

    /** One line per order: "order k: n free blocks". */
    std::string dumpFreeLists() const;

    /** @name Event counters (registered by MemoryNode) @{ */
    Counter allocCalls;
    Counter allocFailures;
    Counter splits;
    Counter merges;
    /** @} */

  private:
    /**
     * Body carries no information: a frame is a body iff no head
     * claims it, and which head claims it is derived by blockAt().
     * The only transition that turns a head into a body — losing a
     * coalescing merge — explicitly resets the loser to Body, so a
     * head state read is never stale.
     */
    enum class State : std::uint8_t
    {
        Body,
        FreeHead,
        AllocHead,
    };

    struct Frame
    {
        State state = State::Body;
        std::uint8_t order = 0;
        Migratetype mt = Migratetype::Movable;
        std::uint16_t client = 0;
    };

    /** Remove a known free block from its free list (O(1)). */
    void detachFree(FrameNum head, unsigned order);
    /** Push a block onto the free list of @p order (O(1)). */
    void attachFree(FrameNum head, unsigned order);
    /** Record allocated-block metadata on the head frame (O(1)). */
    void markAllocated(FrameNum head, unsigned order, Migratetype mt,
                       std::uint16_t client);
    /** Reverse markAllocated's region accounting. */
    void unaccountAllocated(FrameNum head, unsigned order,
                            Migratetype mt);

    /** Node-local containing-block lookup (descent from maxOrder). */
    BlockInfo blockAt(FrameNum local) const;

    /** Flip the pair bit of @p head's buddy pair at @p order. */
    void togglePairBit(FrameNum head, unsigned order)
    {
        const std::uint64_t idx = head >> (order + 1);
        pairBits[order][idx >> 6] ^= 1ull << (idx & 63);
    }

    /** True when exactly one member of the pair is free at @p order. */
    bool pairBitSet(FrameNum head, unsigned order) const
    {
        const std::uint64_t idx = head >> (order + 1);
        return (pairBits[order][idx >> 6] >> (idx & 63)) & 1;
    }

    FrameNum buddyOf(FrameNum head, unsigned order) const
    {
        return head ^ (1ull << order);
    }

    /** Global frame range check (public-boundary validation). */
    bool inRange(FrameNum global) const
    {
        return global >= fbase && global - fbase < nframes;
    }

    std::uint64_t nframes;
    FrameNum fbase = 0;
    unsigned maxOrd;
    std::uint64_t nfree = 0;

    std::vector<Frame> meta;

    /** Intrusive doubly-linked free lists, one per order. */
    std::vector<FrameNum> freeListHead; // per order
    std::vector<FrameNum> nextFree;     // per frame (valid for FreeHead)
    std::vector<FrameNum> prevFree;

    /** Free-block count per order (satisfies freeBlocksAt in O(1)). */
    std::vector<std::uint64_t> freeCount;

    /**
     * One bitmap per order; bit i is the XOR-flip parity of buddy pair
     * i = head >> (order+1): set iff an odd number of the pair's two
     * blocks is on the order's free list. Below maxOrder, eager
     * coalescing makes "odd" mean "exactly one".
     */
    std::vector<std::vector<std::uint64_t>> pairBits;

    /**
     * Frame-class counters per maxOrder region. Sized to cover the
     * non-region tail of a non-power-of-two node as one extra pseudo
     * region, so accounting never branches; regionCounts() only
     * exposes the regions() full regions.
     */
    std::vector<RegionCounts> regionInfo;
};

} // namespace gpsm::mem

#endif // GPSM_MEM_BUDDY_ALLOCATOR_HH
