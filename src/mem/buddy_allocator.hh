/**
 * @file
 * Binary buddy allocator over one memory node's physical frames.
 *
 * This reproduces the structural behaviour of Linux's zoned buddy
 * allocator that the paper's huge-page availability arguments rest on:
 * power-of-two blocks with aligned buddies, split on demand from the
 * smallest sufficient order, and eager coalescing on free. Huge pages
 * are order `hugeOrder()` blocks; a node has a free huge-page region iff
 * the buddy has a free block of at least that order.
 */

#ifndef GPSM_MEM_BUDDY_ALLOCATOR_HH
#define GPSM_MEM_BUDDY_ALLOCATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/types.hh"
#include "util/stats.hh"

namespace gpsm::mem
{

/**
 * Buddy allocator state plus per-frame metadata.
 *
 * Frames are identified by FrameNum in [frameBase(), frameBase() +
 * frames()). A block of order k covers 2^k frames and is aligned to
 * 2^k. The allocator tracks, per head frame, the block's order,
 * migratetype and owning client id; body frames point back to
 * membership only implicitly (state AllocBody / FreeBody).
 *
 * On a two-node machine the remote node's allocator runs with
 * frame_base = remoteNodeFrameBase, so its FrameNums are globally
 * unique and carry their node identity. The base is aligned to every
 * representable order, so alignment and buddy-XOR math agree between
 * the global and node-local numberings. Internals are node-local
 * (0-based); conversion happens at the public boundary.
 */
class BuddyAllocator
{
  public:
    /**
     * @param frames Total frames managed (need not be a power of two).
     * @param max_order Largest block order (the huge-page order).
     * @param frame_base Global number of this node's first frame
     *        (0 for the local node, remoteNodeFrameBase for node 1).
     */
    BuddyAllocator(std::uint64_t frames, unsigned max_order,
                   FrameNum frame_base = 0);

    BuddyAllocator(const BuddyAllocator &) = delete;
    BuddyAllocator &operator=(const BuddyAllocator &) = delete;

    /**
     * Allocate one block of exactly @p order, splitting larger blocks
     * if needed (smallest-sufficient-order policy).
     *
     * @param order Block order requested.
     * @param mt Mobility class recorded on the block.
     * @param client Owner id recorded on the block (see MemoryNode).
     * @return Head frame, or invalidFrame when no block of any order
     *         >= @p order is free.
     */
    FrameNum allocate(unsigned order, Migratetype mt,
                      std::uint16_t client);

    /**
     * Allocate a specific free block (used by the compactor to claim a
     * region it just emptied, and by tests).
     *
     * @return true when the exact block [head, head+2^order) was free
     *         and is now allocated.
     */
    bool allocateExact(FrameNum head, unsigned order, Migratetype mt,
                       std::uint16_t client);

    /**
     * Free the block headed at @p head. The block's recorded order is
     * used; freeing a non-head or free frame panics. Buddies coalesce
     * eagerly up to maxOrder.
     */
    void free(FrameNum head);

    /**
     * Split one allocated block of order >= 1 headed at @p head into
     * two allocated buddies of order-1 (fragmenter building block;
     * mirrors Linux split_page()). Metadata (mt, client) is copied.
     */
    void splitAllocated(FrameNum head);

    /** @name Queries @{ */
    std::uint64_t frames() const { return nframes; }
    /** Global frame number of this node's first frame. */
    FrameNum frameBase() const { return fbase; }
    unsigned maxOrder() const { return maxOrd; }
    std::uint64_t freeFrames() const { return nfree; }
    std::uint64_t allocatedFrames() const { return nframes - nfree; }

    /** Number of free blocks at exactly @p order. */
    std::uint64_t freeBlocksAt(unsigned order) const;

    /** Number of free blocks of order >= @p order. */
    std::uint64_t freeBlocksAtLeast(unsigned order) const;

    /** Largest order with a free block, or -1 when empty. */
    int largestFreeOrder() const;

    /**
     * True when frame is inside any allocated block. Frames outside
     * this node's range are simply "not allocated here" (stale swap
     * queue entries probe across nodes), not an error.
     */
    bool isAllocated(FrameNum frame) const;

    /** True when @p frame heads an allocated block (range-tolerant). */
    bool isAllocatedHead(FrameNum frame) const;

    /** Order of the allocated block headed at @p frame (panics else). */
    unsigned orderOf(FrameNum frame) const;

    /** Migratetype of the allocated block headed at @p frame. */
    Migratetype migratetypeOf(FrameNum frame) const;

    /** Owner id of the allocated block headed at @p frame. */
    std::uint16_t clientOf(FrameNum frame) const;

    /**
     * Head frame of the allocated block containing @p frame
     * (invalidFrame when the frame is free).
     */
    FrameNum headOf(FrameNum frame) const;
    /** @} */

    /**
     * Per-maxOrder-region summary used by the compactor and by
     * fragmentation metrics: counts of free / movable / unmovable /
     * pinned frames within the aligned region containing @p frame.
     */
    struct RegionSummary
    {
        std::uint64_t freeFrames = 0;
        std::uint64_t movableFrames = 0;
        std::uint64_t unmovableFrames = 0;
        std::uint64_t pinnedFrames = 0;
        /** Heads of movable allocated blocks inside the region. */
        std::vector<FrameNum> movableHeads;
    };

    RegionSummary summarizeRegion(FrameNum region_head) const;

    /** Number of maxOrder regions fully contained in the node. */
    std::uint64_t regions() const { return nframes >> maxOrd; }

    /**
     * Fraction of free memory that does not belong to any free
     * maxOrder block — the paper's "fragmentation level" measured on
     * the current allocator state.
     */
    double fragmentationLevel() const;

    /** Consistency check used by tests; panics on violation. */
    void checkInvariants() const;

    /** One line per order: "order k: n free blocks". */
    std::string dumpFreeLists() const;

    /** @name Event counters (registered by MemoryNode) @{ */
    Counter allocCalls;
    Counter allocFailures;
    Counter splits;
    Counter merges;
    /** @} */

  private:
    enum class State : std::uint8_t
    {
        FreeHead,
        FreeBody,
        AllocHead,
        AllocBody,
    };

    struct Frame
    {
        State state = State::FreeBody;
        std::uint8_t order = 0;
        Migratetype mt = Migratetype::Movable;
        std::uint16_t client = 0;
    };

    /** Remove a known free block from its free list. */
    void detachFree(FrameNum head, unsigned order);
    /** Push a block onto the free list of @p order and mark frames. */
    void attachFree(FrameNum head, unsigned order);
    /** Mark block frames allocated with metadata. */
    void markAllocated(FrameNum head, unsigned order, Migratetype mt,
                       std::uint16_t client);

    FrameNum buddyOf(FrameNum head, unsigned order) const
    {
        return head ^ (1ull << order);
    }

    /** Global frame range check (public-boundary validation). */
    bool inRange(FrameNum global) const
    {
        return global >= fbase && global - fbase < nframes;
    }

    std::uint64_t nframes;
    FrameNum fbase = 0;
    unsigned maxOrd;
    std::uint64_t nfree = 0;

    std::vector<Frame> meta;

    /** Intrusive doubly-linked free lists, one per order. */
    std::vector<FrameNum> freeListHead; // per order
    std::vector<FrameNum> nextFree;     // per frame (valid for FreeHead)
    std::vector<FrameNum> prevFree;
};

} // namespace gpsm::mem

#endif // GPSM_MEM_BUDDY_ALLOCATOR_HH
