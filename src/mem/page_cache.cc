/**
 * @file
 * PageCache facade implementation.
 */

#include "mem/page_cache.hh"

#include "mem/memory_node.hh"
#include "util/bitops.hh"

namespace gpsm::mem
{

PageCache::PageCache(MemoryNode &target, EvictionKind kind)
    : cache_(target, kind), stagingFile(cache_.createFile("input-files")),
      pagesCached(cache_.pagesCached), pagesDropped(cache_.pagesDropped)
{
}

std::uint64_t
PageCache::cacheFileData(std::uint64_t bytes)
{
    const AddressSpaceCache::PopulateResult res =
        cache_.populate(stagingFile, nextPage, bytes);
    nextPage += res.pages;
    return res.bytes;
}

void
PageCache::dropAll()
{
    cache_.dropFile(stagingFile);
    nextPage = 0;
}

std::uint64_t
PageCache::cachedBytes() const
{
    return cache_.residentBytesOf(stagingFile);
}

std::uint64_t
PageCache::cachedPages() const
{
    return cache_.residentPagesOf(stagingFile);
}

std::uint64_t
PageCache::reclaim(std::uint64_t frames)
{
    return cache_.reclaim(frames);
}

} // namespace gpsm::mem
