/**
 * @file
 * PageCache implementation.
 */

#include "mem/page_cache.hh"

#include "mem/memory_node.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace gpsm::mem
{

PageCache::PageCache(MemoryNode &target) : node(target)
{
    clientId = node.registerClient(this);
    node.addReclaimable(this);
}

PageCache::~PageCache()
{
    dropAll();
}

std::uint64_t
PageCache::cacheFileData(std::uint64_t bytes)
{
    const std::uint64_t page = node.basePageBytes();
    const std::uint64_t want = divCeil(bytes, page);
    std::uint64_t got = 0;

    BuddyAllocator &buddy = node.buddy();
    for (std::uint64_t i = 0; i < want; ++i) {
        FrameNum f = buddy.allocate(0, Migratetype::Movable, clientId);
        if (f == invalidFrame)
            break;
        lru.push_back(f);
        frames.emplace(f, true);
        ++pagesCached;
        ++got;
    }
    return got * page;
}

void
PageCache::dropAll()
{
    for (const auto &[frame, live] : frames) {
        (void)live;
        node.free(frame);
        ++pagesDropped;
    }
    frames.clear();
    lru.clear();
}

std::uint64_t
PageCache::cachedBytes() const
{
    return frames.size() * node.basePageBytes();
}

std::uint64_t
PageCache::reclaim(std::uint64_t want)
{
    std::uint64_t got = 0;
    while (got < want && !lru.empty()) {
        FrameNum f = lru.front();
        lru.pop_front();
        auto it = frames.find(f);
        if (it == frames.end())
            continue; // stale entry left behind by migration
        frames.erase(it);
        node.free(f);
        ++pagesDropped;
        ++got;
    }
    return got;
}

void
PageCache::migratePage(FrameNum from, FrameNum to)
{
    auto it = frames.find(from);
    GPSM_ASSERT(it != frames.end(),
                "migration callback for a frame the cache does not own");
    frames.erase(it);
    frames.emplace(to, true);
    lru.push_back(to); // the stale 'from' entry is skipped lazily
}

} // namespace gpsm::mem
