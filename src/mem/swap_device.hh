/**
 * @file
 * Swap backing store: slot allocation and occupancy accounting.
 */

#ifndef GPSM_MEM_SWAP_DEVICE_HH
#define GPSM_MEM_SWAP_DEVICE_HH

#include <cstdint>
#include <vector>

#include "util/stats.hh"
#include "util/units.hh"

namespace gpsm::mem
{

/**
 * Narrow fault-injection hook for the swap device: a stalled device
 * refuses new slot allocations, so swap-outs fail as they do when an
 * overloaded disk makes the swap path time out. Implemented by
 * fault::FaultSession; absent by default.
 */
class SwapInterceptor
{
  public:
    virtual ~SwapInterceptor() = default;

    /** Should this slot allocation be refused (device stalled)? */
    virtual bool stallSlotAllocation() = 0;
};

/**
 * Models the secondary-storage swap area. Time-free like the rest of
 * the mem layer: the VM layer charges swap-in/out costs; this class
 * only tracks slots so oversubscription is bounded and accounted.
 */
class SwapDevice
{
  public:
    /** @param bytes Device capacity; @param page_bytes slot size. */
    SwapDevice(std::uint64_t bytes, std::uint64_t page_bytes)
        : slotBytes(page_bytes), totalSlots(bytes / page_bytes)
    {
    }

    /** Install (or, with nullptr, remove) the fault-injection hook. */
    void setInterceptor(SwapInterceptor *hook) { interceptor = hook; }

    /** Reserve a slot for a swapped-out page; ~0 when device is full
     *  or an injected stall window is active. */
    std::uint64_t
    allocSlot()
    {
        std::uint64_t slot;
        if (interceptor != nullptr &&
            interceptor->stallSlotAllocation()) {
            ++stalledAllocs;
            return ~0ull;
        }
        if (!freeSlots.empty()) {
            slot = freeSlots.back();
            freeSlots.pop_back();
        } else if (nextSlot < totalSlots) {
            slot = nextSlot++;
        } else {
            return ~0ull;
        }
        ++pagesOut;
        return slot;
    }

    /** Release a slot after swap-in (or on unmap of a swapped page). */
    void
    freeSlot(std::uint64_t slot)
    {
        freeSlots.push_back(slot);
        ++pagesIn;
    }

    std::uint64_t usedSlots() const
    {
        return nextSlot - freeSlots.size();
    }
    std::uint64_t capacitySlots() const { return totalSlots; }
    std::uint64_t usedBytes() const { return usedSlots() * slotBytes; }

    Counter pagesOut;
    Counter pagesIn;
    Counter stalledAllocs; ///< slot requests refused by a fault window

  private:
    std::uint64_t slotBytes;
    std::uint64_t totalSlots;
    std::uint64_t nextSlot = 0;
    std::vector<std::uint64_t> freeSlots;
    SwapInterceptor *interceptor = nullptr;
};

} // namespace gpsm::mem

#endif // GPSM_MEM_SWAP_DEVICE_HH
