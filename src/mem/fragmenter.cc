/**
 * @file
 * Fragmenter implementation.
 */

#include "mem/fragmenter.hh"

#include "mem/memory_node.hh"
#include "util/logging.hh"

namespace gpsm::mem
{

Fragmenter::Fragmenter(MemoryNode &target) : node(target)
{
    clientId = node.registerClient(this);
}

Fragmenter::~Fragmenter()
{
    release();
}

std::uint64_t
Fragmenter::fragment(double level)
{
    if (level < 0.0 || level > 1.0)
        fatal("fragmentation level %.2f out of [0,1]", level);

    BuddyAllocator &buddy = node.buddy();
    const unsigned huge_order = buddy.maxOrder();
    const std::uint64_t block_frames = 1ull << huge_order;

    const std::uint64_t free_frames = buddy.freeFrames();
    const auto target_frames = static_cast<std::uint64_t>(
        level * static_cast<double>(free_frames));
    const std::uint64_t blocks = target_frames / block_frames;

    std::uint64_t poisoned = 0;
    for (std::uint64_t b = 0; b < blocks; ++b) {
        FrameNum head = buddy.allocate(huge_order, Migratetype::Unmovable,
                                       clientId);
        if (head == invalidFrame)
            break; // no huge regions left to poison

        // split_page(): turn the huge block into base-page blocks.
        for (unsigned order = huge_order; order > 0; --order) {
            for (FrameNum f = head; f < head + block_frames;
                 f += 1ull << order) {
                buddy.splitAllocated(f);
            }
        }
        // Free pages 2..N, keeping the first page of the region
        // allocated (and unmovable) forever.
        for (FrameNum f = head + 1; f < head + block_frames; ++f)
            buddy.free(f);
        retained.push_back(head);
        ++poisoned;
    }
    return poisoned;
}

void
Fragmenter::release()
{
    for (FrameNum f : retained)
        node.free(f);
    retained.clear();
}

void
Fragmenter::migratePage(FrameNum, FrameNum)
{
    panic("fragmenter pages are unmovable and must never migrate");
}

} // namespace gpsm::mem
