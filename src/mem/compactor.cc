/**
 * @file
 * Compactor implementation.
 */

#include "mem/compactor.hh"

#include <limits>

#include "mem/memory_node.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace gpsm::mem
{

Compactor::Result
Compactor::createHugeRegion()
{
    BuddyAllocator &buddy = node.buddy();
    const unsigned huge_order = buddy.maxOrder();
    const std::uint64_t region_size = 1ull << huge_order;

    // Pass 1: pick the cheapest candidate region.
    FrameNum best = invalidFrame;
    std::uint64_t best_cost = std::numeric_limits<std::uint64_t>::max();
    for (std::uint64_t r = 0; r < buddy.regions(); ++r) {
        const FrameNum head = buddy.frameBase() + r * region_size;
        const auto s = buddy.summarizeRegion(head);
        if (s.unmovableFrames != 0 || s.pinnedFrames != 0)
            continue;
        if (s.freeFrames == region_size)
            continue; // already a free huge region
        if (s.movableFrames == 0)
            continue; // cannot happen with the above, defensive
        // A fully-occupied movable region containing one huge block
        // yields nothing (it would just trade one huge page for
        // another).
        bool has_huge_block = false;
        for (FrameNum h : s.movableHeads) {
            if (buddy.orderOf(h) == huge_order) {
                has_huge_block = true;
                break;
            }
        }
        if (has_huge_block)
            continue;
        // Feasibility: enough free frames outside the region to absorb
        // the evacuated pages.
        const std::uint64_t free_elsewhere =
            buddy.freeFrames() - s.freeFrames;
        if (free_elsewhere < s.movableFrames)
            continue;
        if (s.movableFrames < best_cost) {
            best_cost = s.movableFrames;
            best = head;
        }
    }

    Result res;
    if (best == invalidFrame)
        return res;

    // Pass 2: reserve the region's free space so evacuation targets
    // land outside it, then migrate every movable block out.
    const auto summary = buddy.summarizeRegion(best);
    std::vector<FrameNum> reserved;
    {
        FrameNum f = best;
        const FrameNum end = best + region_size;
        while (f < end) {
            if (buddy.isAllocated(f)) {
                f += 1ull << buddy.orderOf(buddy.headOf(f));
            } else {
                // Claim the largest aligned free block at f within the
                // region; order-0 claims always succeed on free frames.
                unsigned order = 0;
                while (order + 1 <= huge_order &&
                       isAligned(f, 1ull << (order + 1)) &&
                       f + (1ull << (order + 1)) <= end) {
                    // Probe: the bigger block must be fully free.
                    bool free_block = true;
                    for (FrameNum g = f; g < f + (1ull << (order + 1));
                         ++g) {
                        if (buddy.isAllocated(g)) {
                            free_block = false;
                            break;
                        }
                    }
                    if (!free_block)
                        break;
                    ++order;
                }
                bool ok = buddy.allocateExact(f, order,
                                              Migratetype::Unmovable,
                                              /*client=*/0);
                GPSM_ASSERT(ok, "failed to reserve free block during "
                                "compaction");
                reserved.push_back(f);
                f += 1ull << order;
            }
        }
    }

    // Migrate first, free the sources afterwards: freeing a source
    // mid-loop would let a later evacuee be relocated back *into* the
    // region being compacted.
    for (FrameNum from : summary.movableHeads) {
        const unsigned order = buddy.orderOf(from);
        GPSM_ASSERT(order == 0,
                    "compaction only migrates order-0 movable blocks");
        const Migratetype mt = buddy.migratetypeOf(from);
        const std::uint16_t owner = buddy.clientOf(from);

        FrameNum to = buddy.allocate(order, mt, owner);
        GPSM_ASSERT(to != invalidFrame,
                    "feasibility precheck guaranteed a free frame");
        PageClient *pc = node.client(owner);
        GPSM_ASSERT(pc != nullptr);
        pc->migratePage(from, to);
        res.migratedPages += 1ull << order;
    }
    for (FrameNum from : summary.movableHeads)
        buddy.free(from);

    // Release the reservations; frees coalesce into one huge block.
    for (FrameNum f : reserved)
        buddy.free(f);

    res.success = true;
    res.regionHead = best;
    return res;
}

} // namespace gpsm::mem
