/**
 * @file
 * Compactor implementation.
 */

#include "mem/compactor.hh"

#include <limits>

#include "mem/memory_node.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace gpsm::mem
{

Compactor::Result
Compactor::createHugeRegion()
{
    BuddyAllocator &buddy = node.buddy();
    const unsigned huge_order = buddy.maxOrder();
    const std::uint64_t region_size = 1ull << huge_order;

    // Pass 1: pick the cheapest candidate region. The allocator keeps
    // per-region frame-class counters current, so this is a pure
    // counter scan — no frame metadata is touched.
    FrameNum best = invalidFrame;
    std::uint64_t best_cost = std::numeric_limits<std::uint64_t>::max();
    const std::uint64_t total_free = buddy.freeFrames();
    for (std::uint64_t r = 0; r < buddy.regions(); ++r) {
        const auto &c = buddy.regionCounts(r);
        if (c.unmovableFrames != 0 || c.pinnedFrames != 0)
            continue;
        if (c.freeFrames == region_size)
            continue; // already a free huge region
        if (c.movableFrames == 0)
            continue; // cannot happen with the above, defensive
        // A fully-occupied movable region containing one huge block
        // yields nothing (it would just trade one huge page for
        // another).
        if (c.movableHugeBlocks != 0)
            continue;
        // Feasibility: enough free frames outside the region to absorb
        // the evacuated pages.
        if (total_free - c.freeFrames < c.movableFrames)
            continue;
        if (c.movableFrames < best_cost) {
            best_cost = c.movableFrames;
            best = buddy.frameBase() + r * region_size;
        }
    }

    Result res;
    if (best == invalidFrame)
        return res;

    // Pass 2: reserve the region's free space so evacuation targets
    // land outside it, then migrate every movable block out. The
    // candidate pass already proved the region worth summarizing; do
    // it exactly once, into the reused buffer.
    buddy.summarizeRegion(best, scratch);
    reserved.clear();
    {
        FrameNum f = best;
        const FrameNum end = best + region_size;
        while (f < end) {
            // The walk advances block by block, so f is always a block
            // head; eager coalescing makes each free block already the
            // largest claimable aligned unit.
            const auto b = buddy.blockOf(f);
            if (b.free) {
                bool ok = buddy.allocateExact(f, b.order,
                                              Migratetype::Unmovable,
                                              /*client=*/0);
                GPSM_ASSERT(ok, "failed to reserve free block during "
                                "compaction");
                reserved.push_back(f);
            }
            f += 1ull << b.order;
        }
    }

    // Migrate first, free the sources afterwards: freeing a source
    // mid-loop would let a later evacuee be relocated back *into* the
    // region being compacted.
    for (FrameNum from : scratch.movableHeads) {
        const unsigned order = buddy.orderOf(from);
        GPSM_ASSERT(order == 0,
                    "compaction only migrates order-0 movable blocks");
        const Migratetype mt = buddy.migratetypeOf(from);
        const std::uint16_t owner = buddy.clientOf(from);

        FrameNum to = buddy.allocate(order, mt, owner);
        GPSM_ASSERT(to != invalidFrame,
                    "feasibility precheck guaranteed a free frame");
        PageClient *pc = node.client(owner);
        GPSM_ASSERT(pc != nullptr);
        pc->migratePage(from, to);
        res.migratedPages += 1ull << order;
    }
    for (FrameNum from : scratch.movableHeads)
        buddy.free(from);

    // Release the reservations; frees coalesce into one huge block.
    for (FrameNum f : reserved)
        buddy.free(f);

    res.success = true;
    res.regionHead = best;
    return res;
}

} // namespace gpsm::mem
