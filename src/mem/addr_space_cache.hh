/**
 * @file
 * AddressSpaceCache: the page-cache/address-space layer.
 *
 * One cache serves every file object in the machine, in the shape of
 * Linux's struct address_space: a radix tree per file maps file-page
 * offsets to frame-backed page descriptors with clean/dirty/writeback
 * state, and a pluggable eviction policy (CLOCK or exact LRU) decides
 * which resident page goes when memory is needed.
 *
 * Two producers feed it:
 *
 * - the load-time PageCache facade stages input-file pages as clean
 *   resident data (the paper's §4.3 single-use interference scenario);
 * - file-backed VMAs (out-of-core CSR arrays) demand-fault pages in
 *   through faultPage() and let the policy evict under pressure
 *   instead of failing allocation.
 *
 * Eviction state machine per page:
 *
 *   Clean ──evict──────────────────▶ dropped (re-fault zero-fills or
 *   Clean ──write access──▶ Dirty      reads from storage if on disk)
 *   Dirty ──evict──▶ Writeback ──▶ written to storage, then dropped
 *                                  (re-fault charges a storage read)
 *
 * The cache is time-free: it counts events (storage reads, writebacks,
 * evictions) and the MMU converts them into cycles via tlb::CostModel.
 *
 * The cache registers itself with its MemoryNode as both a PageClient
 * (compaction retargets resident pages in place — no stale queue
 * entries, the bug the old PageCache had) and a Reclaimable (any
 * allocation under pressure can shrink the cache).
 */

#ifndef GPSM_MEM_ADDR_SPACE_CACHE_HH
#define GPSM_MEM_ADDR_SPACE_CACHE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/memory_node.hh"
#include "mem/types.hh"
#include "util/radix_tree.hh"
#include "util/stats.hh"

namespace gpsm::mem
{

/**
 * Callback interface the owner of a file mapping (vm::AddressSpace)
 * implements so the cache can keep page-table entries honest when it
 * evicts or compaction migrates a resident page.
 */
class FileMapper
{
  public:
    virtual ~FileMapper() = default;

    /**
     * The page mapped at @p vpn lost its frame (eviction or teardown).
     * Clear the PTE; push a TLB invalidation when @p invalidateTlb
     * (teardown paths that already flush the whole TLB pass false).
     */
    virtual void unmapFilePage(std::uint64_t vpn, bool invalidateTlb) = 0;

    /** The frame under @p vpn moved to @p to during compaction. */
    virtual void retargetFilePage(std::uint64_t vpn, FrameNum to) = 0;
};

/** Residency state of a cached file page. */
enum class FilePageState : std::uint8_t
{
    Clean,     ///< matches backing storage (or zero-fill, never written)
    Dirty,     ///< modified since fault-in; eviction must write back
    Writeback, ///< write-out in flight (transient, inside eviction)
};

/** What servicing one file-page fault took. */
struct FileFaultResult
{
    FrameNum frame = invalidFrame;
    bool success = false;
    /** Page content was read from backing storage (was written back). */
    bool storageRead = false;
    /** Dirty pages written back by evictions on this fault's path. */
    std::uint64_t writebackPages = 0;
    /** Page-cache pages reclaimed to satisfy the allocation. */
    std::uint64_t reclaimedPages = 0;
    /** Anonymous pages swapped out to satisfy the allocation. */
    std::uint64_t swappedPages = 0;
};

/**
 * Replacement policy over resident page keys. A key packs
 * (file, page index) into 64 bits; policies treat it as opaque.
 *
 * All operations are O(1) and in place: removed() never leaves a stale
 * entry behind, so a policy's size always equals the resident page
 * count (asserted by AddressSpaceCache::checkInvariants()).
 */
class EvictionPolicy
{
  public:
    static constexpr std::uint64_t noVictim = ~0ull;

    virtual ~EvictionPolicy() = default;

    virtual const char *name() const = 0;
    /** A page became resident. */
    virtual void inserted(std::uint64_t key) = 0;
    /** A resident page was accessed (TLB-walk granularity). */
    virtual void touched(std::uint64_t key) = 0;
    /** A resident page went away for a non-policy reason (teardown). */
    virtual void removed(std::uint64_t key) = 0;
    /** Choose the next victim and remove it; noVictim when empty. */
    virtual std::uint64_t pickVictim() = 0;
    virtual std::uint64_t size() const = 0;
};

/**
 * Second-chance CLOCK. Pages sit on a ring in insertion order; the
 * hand sweeps circularly, clearing reference bits until it finds an
 * unreferenced page. New pages enter at the tail with their reference
 * bit clear (they earn it on first touch); inserts never move the
 * hand — a hand parked at end() (empty ring, or the tail was just
 * evicted) wraps to the head on the next sweep.
 */
class ClockPolicy : public EvictionPolicy
{
  public:
    const char *name() const override { return "clock"; }
    void inserted(std::uint64_t key) override;
    void touched(std::uint64_t key) override;
    void removed(std::uint64_t key) override;
    std::uint64_t pickVictim() override;
    std::uint64_t size() const override { return pos.size(); }

  private:
    struct Entry
    {
        std::uint64_t key;
        bool referenced;
    };

    using Ring = std::list<Entry>;

    Ring ring;
    Ring::iterator hand = ring.end();
    std::unordered_map<std::uint64_t, Ring::iterator> pos;
};

/** Exact LRU: touch moves to MRU, the victim is the LRU page. */
class LruPolicy : public EvictionPolicy
{
  public:
    const char *name() const override { return "lru"; }
    void inserted(std::uint64_t key) override;
    void touched(std::uint64_t key) override;
    void removed(std::uint64_t key) override;
    std::uint64_t pickVictim() override;
    std::uint64_t size() const override { return pos.size(); }

  private:
    std::list<std::uint64_t> order; ///< front = MRU, back = LRU
    std::unordered_map<std::uint64_t,
                       std::list<std::uint64_t>::iterator> pos;
};

std::unique_ptr<EvictionPolicy> makeEvictionPolicy(EvictionKind kind);

class AddressSpaceCache : public PageClient, public Reclaimable
{
  public:
    explicit AddressSpaceCache(MemoryNode &node,
                               EvictionKind kind = EvictionKind::Clock);
    ~AddressSpaceCache() override;

    /**
     * Create a new (empty, sparse) file object. Slots released by
     * destroyFile() are reused (LIFO), so long-lived services that
     * create one file per array per run do not accumulate dead
     * FileObjects.
     */
    FileId createFile(std::string name);

    /**
     * dropFile() plus release of the file object itself: the FileId
     * becomes invalid (any later use asserts) and its slot is free for
     * the next createFile(). Callers that keep using the id — the
     * PageCache staging file — want dropFile() instead.
     *
     * @return pages dropped.
     */
    std::uint64_t destroyFile(FileId file, bool invalidateTlb = true);

    struct PopulateResult
    {
        std::uint64_t pages = 0;
        std::uint64_t bytes = 0; ///< exact bytes (final page clamped)
    };

    /**
     * Stage @p bytes of file data as clean resident pages starting at
     * page @p startPage. Best effort with no escalation (matching the
     * kernel's opportunistic readahead): stops at the first failed
     * frame allocation. The final page is clamped to the requested
     * bytes, so caching 100 bytes accounts 100, not 4096.
     */
    PopulateResult populate(FileId file, std::uint64_t startPage,
                            std::uint64_t bytes);

    /**
     * Demand-fault one non-resident page of @p file. Allocates a frame
     * with full escalation rights (reclaim from this cache, swap
     * anonymous memory) so footprint beyond DRAM evicts instead of
     * failing. A write fault latches the page Dirty.
     *
     * @param vpn    Virtual page the caller maps the frame under.
     * @param mapper Owner to notify on later eviction/migration.
     */
    FileFaultResult faultPage(FileId file, std::uint64_t index,
                              bool write, std::uint64_t vpn,
                              FileMapper *mapper);

    /**
     * A mapped resident page was accessed (called at TLB-walk
     * granularity): feeds the replacement policy and latches Dirty on
     * write. Fast-path TLB hits do not reach here — an accepted
     * fidelity limit, documented in DESIGN §5j.
     */
    void notePageAccess(FileId file, std::uint64_t index, bool write);

    /**
     * Drop every resident page of @p file and forget its on-disk
     * shadow (teardown/drop_caches). Dirty contents are discarded
     * without writeback, like munmap without msync.
     *
     * @return pages dropped.
     */
    std::uint64_t dropFile(FileId file, bool invalidateTlb = true);

    /**
     * Forget every mapper pointer without unmapping anything. Teardown
     * only: the owner of the page tables (the FileMapper) is being or
     * has been destroyed, so later evictions and the cache's own
     * destructor must not call back into it.
     */
    void detachMappers();

    /** PageClient: in-place fixup, O(1), no stale policy entries. */
    void migratePage(FrameNum from, FrameNum to) override;
    const char *clientName() const override { return "pagecache"; }

    /** Reclaimable: evict up to @p frames resident pages per policy. */
    std::uint64_t reclaim(std::uint64_t frames) override;

    std::uint64_t residentPages() const { return frameMap.size(); }
    std::uint64_t residentBytes() const { return residentBytes_; }
    std::uint64_t residentPagesOf(FileId file) const;
    std::uint64_t residentBytesOf(FileId file) const;

    bool isResident(FileId file, std::uint64_t index) const;
    /** State of a resident page (panics when not resident). */
    FilePageState pageState(FileId file, std::uint64_t index) const;
    /** True when the page has been written back to storage. */
    bool isOnDisk(FileId file, std::uint64_t index) const;

    EvictionKind kind() const { return evictionKind; }
    const EvictionPolicy &policy() const { return *policy_; }

    /**
     * Structural self-check: policy size == resident pages == frame
     * map size, and the byte account matches the page set. Replaces
     * the old "deque never exceeds the frame map" property.
     */
    void checkInvariants() const;

    Counter pagesCached;  ///< pages brought in (staging + faults)
    Counter pagesDropped; ///< pages released (eviction + teardown)
    Counter storageReads; ///< fault-path reads from backing storage
    Counter writebacks;   ///< dirty pages written back before release
    Counter evictions;    ///< policy-driven evictions

  private:
    struct CachedPage
    {
        FrameNum frame = invalidFrame;
        FilePageState state = FilePageState::Clean;
        std::uint32_t bytes = 0;    ///< exact bytes (≤ basePageBytes)
        std::uint64_t vpn = ~0ull;  ///< mapped VPN; ~0 = staging page
        FileMapper *mapper = nullptr;
    };

    struct FileObject
    {
        std::string name;
        util::RadixTree<CachedPage> pages;   ///< resident pages
        util::RadixTree<char> onDisk;        ///< written-back shadow
    };

    /**
     * Policy keys pack (file, index); 40 index bits cover 4 PiB files
     * at 4 KiB pages, far beyond any modeled dataset.
     */
    static std::uint64_t
    keyOf(FileId file, std::uint64_t index)
    {
        GPSM_ASSERT(index < (1ull << 40), "file page index too large");
        return (static_cast<std::uint64_t>(file) << 40) | index;
    }
    static FileId fileOfKey(std::uint64_t key)
    {
        return static_cast<FileId>(key >> 40);
    }
    static std::uint64_t indexOfKey(std::uint64_t key)
    {
        return key & ((1ull << 40) - 1);
    }

    FileObject &fileOf(FileId file);
    const FileObject &fileOf(FileId file) const;
    void insertPage(FileId file, std::uint64_t index, CachedPage page);
    /** Evict one page per policy; false when the cache is empty. */
    bool evictOne();

    MemoryNode &node;
    EvictionKind evictionKind;
    std::unique_ptr<EvictionPolicy> policy_;
    /** Slot per file id; null = destroyed, awaiting reuse. */
    std::vector<std::unique_ptr<FileObject>> files;
    /** Ids freed by destroyFile, reused LIFO by createFile. */
    std::vector<FileId> freeFileIds;
    /** frame -> policy key, for O(1) migration fixup. */
    std::unordered_map<FrameNum, std::uint64_t> frameMap;
    std::uint64_t residentBytes_ = 0;
    std::uint16_t clientId = 0;
};

} // namespace gpsm::mem

#endif // GPSM_MEM_ADDR_SPACE_CACHE_HH
