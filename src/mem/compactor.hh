/**
 * @file
 * Direct memory compaction: assemble a free huge-page region by
 * migrating movable pages out of the least-occupied candidate region.
 */

#ifndef GPSM_MEM_COMPACTOR_HH
#define GPSM_MEM_COMPACTOR_HH

#include <cstdint>
#include <vector>

#include "mem/buddy_allocator.hh"
#include "mem/types.hh"

namespace gpsm::mem
{

class MemoryNode;

/**
 * Models Linux's direct compaction for huge-page allocations.
 *
 * A candidate region is a huge-page-aligned frame range containing no
 * unmovable or pinned block. Compaction picks the candidate with the
 * fewest movable frames (cheapest to empty), relocates each movable
 * order-0 block to a frame outside the region, and leaves the region as
 * one free huge block. Like Linux, it cannot help when every region is
 * polluted by non-movable allocations — the fragmentation scenario of
 * paper §4.4.
 *
 * The candidate pass reads the allocator's cached per-region counters
 * (O(regions)); only the one chosen region is actually summarized, into
 * a buffer reused across calls.
 */
class Compactor
{
  public:
    explicit Compactor(MemoryNode &target) : node(target) {}

    struct Result
    {
        bool success = false;
        /** Head frame of the now-free huge region (on success). */
        FrameNum regionHead = invalidFrame;
        /** Pages copied. */
        std::uint64_t migratedPages = 0;
    };

    /**
     * Try to produce one free huge-page region.
     *
     * @return Result with success=false when no candidate region can be
     *         emptied (all contain non-movable pages, or too little
     *         free memory exists elsewhere to absorb the evacuees).
     */
    Result createHugeRegion();

  private:
    MemoryNode &node;

    /** Summary of the chosen region, reused across invocations. */
    BuddyAllocator::RegionSummary scratch;
    /** Reservation heads, reused across invocations. */
    std::vector<FrameNum> reserved;
};

} // namespace gpsm::mem

#endif // GPSM_MEM_COMPACTOR_HH
