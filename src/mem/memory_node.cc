/**
 * @file
 * MemoryNode implementation.
 */

#include "mem/memory_node.hh"

#include "mem/compactor.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace gpsm::mem
{

MemoryNode::MemoryNode(const Params &params, FrameNum frame_base)
    : pageBytes(params.basePageBytes), hugeOrd(params.hugeOrder)
{
    if (!isPowerOfTwo(pageBytes))
        fatal("base page size must be a power of two");
    if (params.bytes < (pageBytes << hugeOrd))
        fatal("node smaller than one huge page");

    const std::uint64_t frames = params.bytes / pageBytes;
    watermarkFrames = params.hugeWatermarkBytes / pageBytes;
    alloc = std::make_unique<BuddyAllocator>(frames, hugeOrd, frame_base);
    compactor = std::make_unique<Compactor>(*this);

    // Client id 0 is reserved for internal (kernel) allocations.
    clients.push_back(nullptr);

    // Carve the hugetlbfs-style giant-page pool out of boot-fresh
    // memory: contiguous runs of huge blocks, pinned forever.
    giantOrd = params.giantOrder;
    if (params.giantPoolPages > 0) {
        if (giantOrd <= hugeOrd)
            fatal("giant order must exceed the huge order");
        const std::uint64_t giant_frames = 1ull << giantOrd;
        for (std::uint64_t p = 0; p < params.giantPoolPages; ++p) {
            const FrameNum head = frame_base + p * giant_frames;
            if (p * giant_frames + giant_frames > alloc->frames())
                fatal("giant pool exceeds node memory");
            for (FrameNum f = head; f < head + giant_frames;
                 f += 1ull << hugeOrd) {
                bool ok = alloc->allocateExact(
                    f, hugeOrd, Migratetype::Pinned, /*client=*/0);
                GPSM_ASSERT(ok, "boot-time giant reservation failed");
            }
            giantPool.push_back(head);
        }
        giantTotal = params.giantPoolPages;
    }
}

MemoryNode::~MemoryNode() = default;

std::uint16_t
MemoryNode::registerClient(PageClient *client)
{
    GPSM_ASSERT(client != nullptr);
    if (clients.size() >= 0xffff)
        fatal("too many page clients");
    clients.push_back(client);
    return static_cast<std::uint16_t>(clients.size() - 1);
}

PageClient *
MemoryNode::client(std::uint16_t id) const
{
    GPSM_ASSERT(id < clients.size());
    return clients[id];
}

void
MemoryNode::addReclaimable(Reclaimable *pool)
{
    GPSM_ASSERT(pool != nullptr);
    reclaimables.push_back(pool);
}

std::uint64_t
MemoryNode::reclaimFrames(std::uint64_t frames)
{
    std::uint64_t got = 0;
    for (Reclaimable *pool : reclaimables) {
        if (got >= frames)
            break;
        got += pool->reclaim(frames - got);
    }
    reclaimedPages += got;
    return got;
}

std::uint64_t
MemoryNode::swapOutOne()
{
    std::uint64_t evicted = 0;
    while (!swappable.empty() && evicted == 0) {
        FrameNum victim = swappable.front();
        swappable.pop_front();
        if (!alloc->isAllocatedHead(victim))
            continue; // stale: freed since registration
        if (alloc->orderOf(victim) != 0 ||
            alloc->migratetypeOf(victim) != Migratetype::Movable) {
            continue;
        }
        PageClient *owner = client(alloc->clientOf(victim));
        if (owner == nullptr)
            continue;
        if (owner->evictPage(victim)) {
            ++evicted;
            ++swapOuts;
        }
    }
    return evicted;
}

AllocOutcome
MemoryNode::allocate(const Request &req)
{
    AllocOutcome out;
    out.order = req.order;

    if (interceptor != nullptr) {
        // Let the fault layer apply events that have come due (a
        // transient memhog arriving or departing, the frame pool
        // shrinking) before this request sees the free lists.
        interceptor->onAllocate();
        if (req.order == hugeOrd && interceptor->dropHugeAllocation()) {
            // Injected failure window: behave exactly like a
            // watermark rejection — fail fast, no escalation.
            ++injectedHugeFailures;
            return out;
        }
    }

    // Watermark rule: huge-order requests must leave watermarkFrames
    // of free memory behind, or they fail without any further effort
    // (Linux would defer compaction and fall back).
    if (req.order == hugeOrd && watermarkFrames != 0) {
        const std::uint64_t need =
            (1ull << hugeOrd) + watermarkFrames;
        if (alloc->freeFrames() < need) {
            ++watermarkFailures;
            return out;
        }
    }

    auto attempt = [&]() -> FrameNum {
        return alloc->allocate(req.order, req.mt, req.client);
    };

    FrameNum f = attempt();

    // Escalation 1: reclaim clean page-cache pages. For base pages one
    // reclaimed frame suffices; for huge requests reclaim a region's
    // worth and retry (the freed pages may still be discontiguous —
    // that is exactly the paper's point).
    if (f == invalidFrame && req.mayReclaim) {
        const std::uint64_t want = 1ull << req.order;
        out.reclaimedPages = reclaimFrames(want);
        if (out.reclaimedPages > 0)
            f = attempt();
    }

    // Escalation 2: direct compaction for huge-page requests.
    if (f == invalidFrame && req.mayCompact && req.order == hugeOrd) {
        ++compactionRuns;
        Compactor::Result res = compactor->createHugeRegion();
        out.migratedPages += res.migratedPages;
        compactionPagesMigrated += res.migratedPages;
        if (traceHook != nullptr)
            traceHook->traceEvent(obs::TraceKind::CompactionRun,
                                  res.migratedPages,
                                  res.success ? "direct"
                                              : "direct_failed");
        if (res.success) {
            bool ok = alloc->allocateExact(res.regionHead, hugeOrd,
                                           req.mt, req.client);
            GPSM_ASSERT(ok, "compacted region vanished");
            f = res.regionHead;
        } else {
            ++out.compactionFailures;
            ++compactionFails;
        }
    }

    // Escalation 3: swap out movable pages (base-page requests only;
    // Linux's huge-page fault path falls back to 4KB instead).
    if (f == invalidFrame && req.maySwap && req.order == 0) {
        while (f == invalidFrame) {
            std::uint64_t evicted = swapOutOne();
            if (evicted == 0)
                break;
            out.swappedPages += evicted;
            f = attempt();
        }
    }

    if (f == invalidFrame) {
        ++oomFailures;
        return out;
    }

    out.frame = f;
    out.success = true;
    return out;
}

void
MemoryNode::free(FrameNum head)
{
    alloc->free(head);
}

FrameNum
MemoryNode::allocGiantPage()
{
    if (giantPool.empty())
        return invalidFrame;
    FrameNum head = giantPool.back();
    giantPool.pop_back();
    return head;
}

void
MemoryNode::freeGiantPage(FrameNum head)
{
    GPSM_ASSERT(giantOrd != 0 &&
                isAligned(head, 1ull << giantOrd) &&
                giantPool.size() < giantTotal);
    giantPool.push_back(head);
}

void
MemoryNode::noteSwappable(FrameNum frame)
{
    swappable.push_back(frame);
}

void
MemoryNode::registerStats(StatSet &stats, const std::string &prefix) const
{
    stats.registerCounter(prefix + ".injectedHugeFailures",
                          &injectedHugeFailures,
                          "huge requests vetoed by the fault-injection "
                          "layer");
    stats.registerCounter(prefix + ".watermarkFailures",
                          &watermarkFailures,
                          "huge requests rejected by the free-memory "
                          "watermark");
    stats.registerCounter(prefix + ".reclaimedPages", &reclaimedPages,
                          "page-cache pages reclaimed under pressure");
    stats.registerCounter(prefix + ".swapOuts", &swapOuts,
                          "pages swapped out under pressure");
    stats.registerCounter(prefix + ".compactionRuns", &compactionRuns,
                          "direct compaction attempts");
    stats.registerCounter(prefix + ".compactionPagesMigrated",
                          &compactionPagesMigrated,
                          "pages copied by direct compaction");
    stats.registerCounter(prefix + ".compactionFails", &compactionFails,
                          "direct compaction attempts that found no "
                          "candidate region");
    stats.registerCounter(prefix + ".oomFailures", &oomFailures,
                          "allocation requests that failed outright");
    stats.registerCounter(prefix + ".buddy.allocCalls",
                          &alloc->allocCalls, "buddy allocate() calls");
    stats.registerCounter(prefix + ".buddy.allocFailures",
                          &alloc->allocFailures,
                          "buddy allocate() failures");
    stats.registerCounter(prefix + ".buddy.splits", &alloc->splits,
                          "buddy block splits");
    stats.registerCounter(prefix + ".buddy.merges", &alloc->merges,
                          "buddy block merges");
}

} // namespace gpsm::mem
