/**
 * @file
 * BuddyAllocator implementation.
 */

#include "mem/buddy_allocator.hh"

#include <sstream>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace gpsm::mem
{

const char *
migratetypeName(Migratetype mt)
{
    switch (mt) {
      case Migratetype::Movable: return "movable";
      case Migratetype::Unmovable: return "unmovable";
      case Migratetype::Pinned: return "pinned";
    }
    return "?";
}

const char *
numaPlacementName(NumaPlacement p)
{
    switch (p) {
      case NumaPlacement::FirstTouch: return "first-touch";
      case NumaPlacement::Interleave: return "interleave";
      case NumaPlacement::PreferredLocal: return "preferred-local";
      case NumaPlacement::RemoteOnly: return "remote-only";
    }
    return "?";
}

BuddyAllocator::BuddyAllocator(std::uint64_t frames, unsigned max_order,
                               FrameNum frame_base)
    : nframes(frames), fbase(frame_base), maxOrd(max_order)
{
    if (frames == 0)
        fatal("buddy allocator needs at least one frame");
    if (max_order > 30)
        fatal("buddy max order %u unreasonably large", max_order);
    // The base must not perturb alignment or buddy-XOR math at any
    // representable order (remoteNodeFrameBase = 2^32 satisfies this
    // for every node smaller than 2^32 frames).
    if (frame_base != 0 &&
        (!isAligned(frame_base, 1ull << 31) || frames > frame_base)) {
        fatal("buddy frame base %llu incompatible with %llu frames",
              static_cast<unsigned long long>(frame_base),
              static_cast<unsigned long long>(frames));
    }

    meta.resize(nframes);
    freeListHead.assign(maxOrd + 1, invalidFrame);
    nextFree.assign(nframes, invalidFrame);
    prevFree.assign(nframes, invalidFrame);

    // Carve the frame range into maximal aligned free blocks.
    FrameNum f = 0;
    while (f < nframes) {
        unsigned order = maxOrd;
        // Largest order that keeps the block aligned and in range.
        while (order > 0 &&
               (!isAligned(f, 1ull << order) ||
                f + (1ull << order) > nframes)) {
            --order;
        }
        attachFree(f, order);
        f += 1ull << order;
    }
}

void
BuddyAllocator::attachFree(FrameNum head, unsigned order)
{
    const std::uint64_t size = 1ull << order;
    meta[head].state = State::FreeHead;
    meta[head].order = static_cast<std::uint8_t>(order);
    for (std::uint64_t i = 1; i < size; ++i)
        meta[head + i].state = State::FreeBody;

    nextFree[head] = freeListHead[order];
    prevFree[head] = invalidFrame;
    if (freeListHead[order] != invalidFrame)
        prevFree[freeListHead[order]] = head;
    freeListHead[order] = head;
    nfree += size;
}

void
BuddyAllocator::detachFree(FrameNum head, unsigned order)
{
    GPSM_ASSERT(meta[head].state == State::FreeHead &&
                meta[head].order == order);
    FrameNum nxt = nextFree[head];
    FrameNum prv = prevFree[head];
    if (prv != invalidFrame)
        nextFree[prv] = nxt;
    else
        freeListHead[order] = nxt;
    if (nxt != invalidFrame)
        prevFree[nxt] = prv;
    nextFree[head] = prevFree[head] = invalidFrame;
    nfree -= 1ull << order;
}

void
BuddyAllocator::markAllocated(FrameNum head, unsigned order, Migratetype mt,
                              std::uint16_t client)
{
    const std::uint64_t size = 1ull << order;
    meta[head].state = State::AllocHead;
    meta[head].order = static_cast<std::uint8_t>(order);
    meta[head].mt = mt;
    meta[head].client = client;
    for (std::uint64_t i = 1; i < size; ++i)
        meta[head + i].state = State::AllocBody;
}

FrameNum
BuddyAllocator::allocate(unsigned order, Migratetype mt,
                         std::uint16_t client)
{
    ++allocCalls;
    GPSM_ASSERT(order <= maxOrd);

    unsigned have = order;
    while (have <= maxOrd && freeListHead[have] == invalidFrame)
        ++have;
    if (have > maxOrd) {
        ++allocFailures;
        return invalidFrame;
    }

    FrameNum head = freeListHead[have];
    detachFree(head, have);

    // Split down to the requested order, freeing the upper halves.
    while (have > order) {
        --have;
        ++splits;
        attachFree(head + (1ull << have), have);
    }

    markAllocated(head, order, mt, client);
    return head + fbase;
}

bool
BuddyAllocator::allocateExact(FrameNum head, unsigned order, Migratetype mt,
                              std::uint16_t client)
{
    ++allocCalls;
    GPSM_ASSERT(order <= maxOrd && isAligned(head, 1ull << order));
    if (head < fbase) {
        ++allocFailures;
        return false;
    }
    head -= fbase;
    if (head + (1ull << order) > nframes) {
        ++allocFailures;
        return false;
    }

    // Eager coalescing guarantees a fully free aligned range is covered
    // by exactly one free block of order >= requested. Find its head.
    FrameNum h0 = head;
    while (meta[h0].state == State::FreeBody)
        --h0;
    if (meta[h0].state != State::FreeHead) {
        ++allocFailures;
        return false;
    }
    unsigned o0 = meta[h0].order;
    if (h0 + (1ull << o0) < head + (1ull << order)) {
        // Containing free block too small: range not fully free.
        ++allocFailures;
        return false;
    }

    detachFree(h0, o0);
    // Targeted split: repeatedly halve the block containing the target,
    // freeing the non-containing half.
    while (o0 > order) {
        --o0;
        ++splits;
        FrameNum low = h0;
        FrameNum high = h0 + (1ull << o0);
        if (head >= high) {
            attachFree(low, o0);
            h0 = high;
        } else {
            attachFree(high, o0);
            h0 = low;
        }
    }
    GPSM_ASSERT(h0 == head);
    markAllocated(head, order, mt, client);
    return true;
}

void
BuddyAllocator::free(FrameNum head)
{
    if (!inRange(head) || meta[head - fbase].state != State::AllocHead)
        panic("free of non-head frame %llu",
              static_cast<unsigned long long>(head));
    head -= fbase;

    unsigned order = meta[head].order;

    // Coalesce with free buddies as far as possible.
    while (order < maxOrd) {
        FrameNum buddy = buddyOf(head, order);
        if (buddy + (1ull << order) > nframes)
            break;
        if (meta[buddy].state != State::FreeHead ||
            meta[buddy].order != order) {
            break;
        }
        detachFree(buddy, order);
        ++merges;
        head = std::min(head, buddy);
        ++order;
    }
    attachFree(head, order);
}

void
BuddyAllocator::splitAllocated(FrameNum head)
{
    if (!inRange(head) || meta[head - fbase].state != State::AllocHead)
        panic("splitAllocated of non-head frame %llu",
              static_cast<unsigned long long>(head));
    head -= fbase;
    unsigned order = meta[head].order;
    GPSM_ASSERT(order >= 1, "cannot split an order-0 block");

    --order;
    ++splits;
    const Migratetype mt = meta[head].mt;
    const std::uint16_t client = meta[head].client;
    markAllocated(head, order, mt, client);
    markAllocated(head + (1ull << order), order, mt, client);
}

std::uint64_t
BuddyAllocator::freeBlocksAt(unsigned order) const
{
    GPSM_ASSERT(order <= maxOrd);
    std::uint64_t n = 0;
    for (FrameNum f = freeListHead[order]; f != invalidFrame;
         f = nextFree[f]) {
        ++n;
    }
    return n;
}

std::uint64_t
BuddyAllocator::freeBlocksAtLeast(unsigned order) const
{
    std::uint64_t n = 0;
    for (unsigned o = order; o <= maxOrd; ++o)
        n += freeBlocksAt(o);
    return n;
}

int
BuddyAllocator::largestFreeOrder() const
{
    for (int o = static_cast<int>(maxOrd); o >= 0; --o)
        if (freeListHead[static_cast<unsigned>(o)] != invalidFrame)
            return o;
    return -1;
}

bool
BuddyAllocator::isAllocated(FrameNum frame) const
{
    if (!inRange(frame))
        return false;
    frame -= fbase;
    return meta[frame].state == State::AllocHead ||
           meta[frame].state == State::AllocBody;
}

bool
BuddyAllocator::isAllocatedHead(FrameNum frame) const
{
    if (!inRange(frame))
        return false;
    return meta[frame - fbase].state == State::AllocHead;
}

unsigned
BuddyAllocator::orderOf(FrameNum frame) const
{
    GPSM_ASSERT(inRange(frame) &&
                meta[frame - fbase].state == State::AllocHead);
    return meta[frame - fbase].order;
}

Migratetype
BuddyAllocator::migratetypeOf(FrameNum frame) const
{
    GPSM_ASSERT(inRange(frame) &&
                meta[frame - fbase].state == State::AllocHead);
    return meta[frame - fbase].mt;
}

std::uint16_t
BuddyAllocator::clientOf(FrameNum frame) const
{
    GPSM_ASSERT(inRange(frame) &&
                meta[frame - fbase].state == State::AllocHead);
    return meta[frame - fbase].client;
}

FrameNum
BuddyAllocator::headOf(FrameNum frame) const
{
    GPSM_ASSERT(inRange(frame));
    FrameNum f = frame - fbase;
    while (meta[f].state == State::AllocBody ||
           meta[f].state == State::FreeBody) {
        GPSM_ASSERT(f > 0);
        --f;
    }
    return meta[f].state == State::AllocHead ? f + fbase : invalidFrame;
}

BuddyAllocator::RegionSummary
BuddyAllocator::summarizeRegion(FrameNum region_head) const
{
    const std::uint64_t region_size = 1ull << maxOrd;
    GPSM_ASSERT(inRange(region_head));
    region_head -= fbase;
    GPSM_ASSERT(isAligned(region_head, region_size) &&
                region_head + region_size <= nframes);

    RegionSummary s;
    FrameNum f = region_head;
    const FrameNum end = region_head + region_size;
    while (f < end) {
        const Frame &fr = meta[f];
        const std::uint64_t block = 1ull << fr.order;
        switch (fr.state) {
          case State::FreeHead:
            s.freeFrames += block;
            f += block;
            break;
          case State::AllocHead:
            switch (fr.mt) {
              case Migratetype::Movable:
                s.movableFrames += block;
                s.movableHeads.push_back(f + fbase);
                break;
              case Migratetype::Unmovable:
                s.unmovableFrames += block;
                break;
              case Migratetype::Pinned:
                s.pinnedFrames += block;
                break;
            }
            f += block;
            break;
          default:
            panic("region scan hit body frame %llu; block straddles "
                  "region boundary",
                  static_cast<unsigned long long>(f));
        }
    }
    return s;
}

double
BuddyAllocator::fragmentationLevel() const
{
    if (nfree == 0)
        return 0.0;
    const std::uint64_t huge_free =
        freeBlocksAt(maxOrd) * (1ull << maxOrd);
    return 1.0 - static_cast<double>(huge_free) /
                     static_cast<double>(nfree);
}

void
BuddyAllocator::checkInvariants() const
{
    std::uint64_t free_count = 0;
    FrameNum f = 0;
    while (f < nframes) {
        const Frame &fr = meta[f];
        if (fr.state == State::FreeBody || fr.state == State::AllocBody)
            panic("frame %llu: body frame where head expected",
                  static_cast<unsigned long long>(f));
        const std::uint64_t block = 1ull << fr.order;
        if (!isAligned(f, block))
            panic("frame %llu: misaligned order-%u block",
                  static_cast<unsigned long long>(f), unsigned(fr.order));
        if (f + block > nframes)
            panic("frame %llu: block overruns node",
                  static_cast<unsigned long long>(f));
        const State body_state = fr.state == State::FreeHead
                                     ? State::FreeBody
                                     : State::AllocBody;
        for (std::uint64_t i = 1; i < block; ++i) {
            if (meta[f + i].state != body_state)
                panic("frame %llu: inconsistent body state",
                      static_cast<unsigned long long>(f + i));
        }
        if (fr.state == State::FreeHead) {
            free_count += block;
            // Eager coalescing: the buddy must not also be a free block
            // of the same order.
            FrameNum buddy = f ^ block;
            if (buddy + block <= nframes &&
                meta[buddy].state == State::FreeHead &&
                meta[buddy].order == fr.order && fr.order < maxOrd) {
                panic("frames %llu/%llu: uncoalesced free buddies",
                      static_cast<unsigned long long>(f),
                      static_cast<unsigned long long>(buddy));
            }
        }
        f += block;
    }
    if (free_count != nfree)
        panic("free frame accounting mismatch: walked %llu, counter %llu",
              static_cast<unsigned long long>(free_count),
              static_cast<unsigned long long>(nfree));

    // Free lists must reference exactly the FreeHead frames.
    std::uint64_t listed = 0;
    for (unsigned o = 0; o <= maxOrd; ++o) {
        for (FrameNum h = freeListHead[o]; h != invalidFrame;
             h = nextFree[h]) {
            if (meta[h].state != State::FreeHead || meta[h].order != o)
                panic("free list %u contains non-free frame %llu", o,
                      static_cast<unsigned long long>(h));
            listed += 1ull << o;
        }
    }
    if (listed != nfree)
        panic("free list coverage mismatch");
}

std::string
BuddyAllocator::dumpFreeLists() const
{
    std::ostringstream os;
    for (unsigned o = 0; o <= maxOrd; ++o)
        os << "order " << o << ": " << freeBlocksAt(o)
           << " free blocks\n";
    return os.str();
}

} // namespace gpsm::mem
