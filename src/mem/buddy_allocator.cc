/**
 * @file
 * BuddyAllocator implementation.
 *
 * Every mutation is O(1) in block size: head-only metadata writes,
 * one pair-bitmap flip, and counter updates. The only loops left on
 * the allocation path are over *orders* (split descent, coalesce
 * ascent), never over a block's body frames.
 */

#include "mem/buddy_allocator.hh"

#include <algorithm>
#include <sstream>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace gpsm::mem
{

const char *
migratetypeName(Migratetype mt)
{
    switch (mt) {
      case Migratetype::Movable: return "movable";
      case Migratetype::Unmovable: return "unmovable";
      case Migratetype::Pinned: return "pinned";
    }
    return "?";
}

const char *
numaPlacementName(NumaPlacement p)
{
    switch (p) {
      case NumaPlacement::FirstTouch: return "first-touch";
      case NumaPlacement::Interleave: return "interleave";
      case NumaPlacement::PreferredLocal: return "preferred-local";
      case NumaPlacement::RemoteOnly: return "remote-only";
    }
    return "?";
}

BuddyAllocator::BuddyAllocator(std::uint64_t frames, unsigned max_order,
                               FrameNum frame_base)
    : nframes(frames), fbase(frame_base), maxOrd(max_order)
{
    if (frames == 0)
        fatal("buddy allocator needs at least one frame");
    if (max_order > 30)
        fatal("buddy max order %u unreasonably large", max_order);
    // The base must not perturb alignment or buddy-XOR math at any
    // representable order (remoteNodeFrameBase = 2^32 satisfies this
    // for every node smaller than 2^32 frames).
    if (frame_base != 0 &&
        (!isAligned(frame_base, 1ull << 31) || frames > frame_base)) {
        fatal("buddy frame base %llu incompatible with %llu frames",
              static_cast<unsigned long long>(frame_base),
              static_cast<unsigned long long>(frames));
    }

    meta.resize(nframes);
    freeListHead.assign(maxOrd + 1, invalidFrame);
    nextFree.assign(nframes, invalidFrame);
    prevFree.assign(nframes, invalidFrame);
    freeCount.assign(maxOrd + 1, 0);
    pairBits.resize(maxOrd + 1);
    for (unsigned o = 0; o <= maxOrd; ++o)
        pairBits[o].assign((((nframes - 1) >> (o + 1)) >> 6) + 1, 0);
    regionInfo.assign(((nframes - 1) >> maxOrd) + 1, RegionCounts{});

    // Carve the frame range into maximal aligned free blocks.
    FrameNum f = 0;
    while (f < nframes) {
        unsigned order = maxOrd;
        // Largest order that keeps the block aligned and in range.
        while (order > 0 &&
               (!isAligned(f, 1ull << order) ||
                f + (1ull << order) > nframes)) {
            --order;
        }
        attachFree(f, order);
        f += 1ull << order;
    }
}

void
BuddyAllocator::attachFree(FrameNum head, unsigned order)
{
    meta[head].state = State::FreeHead;
    meta[head].order = static_cast<std::uint8_t>(order);

    nextFree[head] = freeListHead[order];
    prevFree[head] = invalidFrame;
    if (freeListHead[order] != invalidFrame)
        prevFree[freeListHead[order]] = head;
    freeListHead[order] = head;

    nfree += 1ull << order;
    ++freeCount[order];
    regionInfo[head >> maxOrd].freeFrames += 1ull << order;
    togglePairBit(head, order);
}

void
BuddyAllocator::detachFree(FrameNum head, unsigned order)
{
    GPSM_ASSERT(meta[head].state == State::FreeHead &&
                meta[head].order == order);
    FrameNum nxt = nextFree[head];
    FrameNum prv = prevFree[head];
    if (prv != invalidFrame)
        nextFree[prv] = nxt;
    else
        freeListHead[order] = nxt;
    if (nxt != invalidFrame)
        prevFree[nxt] = prv;
    nextFree[head] = prevFree[head] = invalidFrame;

    nfree -= 1ull << order;
    --freeCount[order];
    regionInfo[head >> maxOrd].freeFrames -= 1ull << order;
    togglePairBit(head, order);
}

void
BuddyAllocator::markAllocated(FrameNum head, unsigned order, Migratetype mt,
                              std::uint16_t client)
{
    meta[head].state = State::AllocHead;
    meta[head].order = static_cast<std::uint8_t>(order);
    meta[head].mt = mt;
    meta[head].client = client;

    RegionCounts &rc = regionInfo[head >> maxOrd];
    switch (mt) {
      case Migratetype::Movable:
        rc.movableFrames += 1ull << order;
        if (order == maxOrd)
            ++rc.movableHugeBlocks;
        break;
      case Migratetype::Unmovable:
        rc.unmovableFrames += 1ull << order;
        break;
      case Migratetype::Pinned:
        rc.pinnedFrames += 1ull << order;
        break;
    }
}

void
BuddyAllocator::unaccountAllocated(FrameNum head, unsigned order,
                                   Migratetype mt)
{
    RegionCounts &rc = regionInfo[head >> maxOrd];
    switch (mt) {
      case Migratetype::Movable:
        rc.movableFrames -= 1ull << order;
        if (order == maxOrd)
            --rc.movableHugeBlocks;
        break;
      case Migratetype::Unmovable:
        rc.unmovableFrames -= 1ull << order;
        break;
      case Migratetype::Pinned:
        rc.pinnedFrames -= 1ull << order;
        break;
    }
}

BuddyAllocator::BlockInfo
BuddyAllocator::blockAt(FrameNum local) const
{
    // Blocks partition the frame range, so exactly one (head, order)
    // pair with head = local & ~(2^order - 1) carries head metadata
    // recording that order. Descend from maxOrd; stale matches are
    // impossible because losing a merge resets the loser to Body.
    for (unsigned o = maxOrd;; --o) {
        const FrameNum h = local & ~((1ull << o) - 1);
        if (h + (1ull << o) <= nframes) {
            const Frame &fr = meta[h];
            if (fr.state != State::Body && fr.order == o)
                return {h, o, fr.state == State::FreeHead};
        }
        if (o == 0)
            break;
    }
    panic("frame %llu not covered by any block",
          static_cast<unsigned long long>(local));
}

FrameNum
BuddyAllocator::allocate(unsigned order, Migratetype mt,
                         std::uint16_t client)
{
    ++allocCalls;
    GPSM_ASSERT(order <= maxOrd);

    unsigned have = order;
    while (have <= maxOrd && freeListHead[have] == invalidFrame)
        ++have;
    if (have > maxOrd) {
        ++allocFailures;
        return invalidFrame;
    }

    FrameNum head = freeListHead[have];
    detachFree(head, have);

    // Split down to the requested order, freeing the upper halves.
    while (have > order) {
        --have;
        ++splits;
        attachFree(head + (1ull << have), have);
    }

    markAllocated(head, order, mt, client);
    return head + fbase;
}

bool
BuddyAllocator::allocateExact(FrameNum head, unsigned order, Migratetype mt,
                              std::uint16_t client)
{
    ++allocCalls;
    GPSM_ASSERT(order <= maxOrd && isAligned(head, 1ull << order));
    if (head < fbase) {
        ++allocFailures;
        return false;
    }
    head -= fbase;
    if (head + (1ull << order) > nframes) {
        ++allocFailures;
        return false;
    }

    // Eager coalescing guarantees a fully free aligned range is covered
    // by exactly one free block of order >= requested. Find it by
    // order descent instead of walking body frames.
    BlockInfo b = blockAt(head);
    if (!b.free) {
        ++allocFailures;
        return false;
    }
    FrameNum h0 = b.head;
    unsigned o0 = b.order;
    if (h0 + (1ull << o0) < head + (1ull << order)) {
        // Containing free block too small: range not fully free.
        ++allocFailures;
        return false;
    }

    detachFree(h0, o0);
    // Targeted split: repeatedly halve the block containing the target,
    // freeing the non-containing half.
    while (o0 > order) {
        --o0;
        ++splits;
        FrameNum low = h0;
        FrameNum high = h0 + (1ull << o0);
        if (head >= high) {
            attachFree(low, o0);
            h0 = high;
        } else {
            attachFree(high, o0);
            h0 = low;
        }
    }
    GPSM_ASSERT(h0 == head);
    markAllocated(head, order, mt, client);
    return true;
}

void
BuddyAllocator::free(FrameNum head)
{
    if (!inRange(head) || meta[head - fbase].state != State::AllocHead)
        panic("free of non-head frame %llu",
              static_cast<unsigned long long>(head));
    head -= fbase;

    unsigned order = meta[head].order;
    unaccountAllocated(head, order, meta[head].mt);

    // Coalesce with free buddies as far as possible. The pair bit is
    // the whole test: this block is not on a free list, so a set
    // parity bit means the buddy is — same decision the old metadata
    // probe made, in one bit read.
    while (order < maxOrd) {
        FrameNum buddy = buddyOf(head, order);
        if (buddy + (1ull << order) > nframes)
            break;
        if (!pairBitSet(head, order))
            break;
        detachFree(buddy, order);
        ++merges;
        // The losing head becomes an interior frame of the merged
        // block; reset it so head-state reads are never stale.
        meta[std::max(head, buddy)].state = State::Body;
        head = std::min(head, buddy);
        ++order;
    }
    attachFree(head, order);
}

void
BuddyAllocator::splitAllocated(FrameNum head)
{
    if (!inRange(head) || meta[head - fbase].state != State::AllocHead)
        panic("splitAllocated of non-head frame %llu",
              static_cast<unsigned long long>(head));
    head -= fbase;
    unsigned order = meta[head].order;
    GPSM_ASSERT(order >= 1, "cannot split an order-0 block");

    const Migratetype mt = meta[head].mt;
    const std::uint16_t client = meta[head].client;
    if (mt == Migratetype::Movable && order == maxOrd)
        --regionInfo[head >> maxOrd].movableHugeBlocks;

    --order;
    ++splits;
    meta[head].order = static_cast<std::uint8_t>(order);

    FrameNum high = head + (1ull << order);
    meta[high].state = State::AllocHead;
    meta[high].order = static_cast<std::uint8_t>(order);
    meta[high].mt = mt;
    meta[high].client = client;
}

std::uint64_t
BuddyAllocator::freeBlocksAt(unsigned order) const
{
    GPSM_ASSERT(order <= maxOrd);
    return freeCount[order];
}

std::uint64_t
BuddyAllocator::freeBlocksAtLeast(unsigned order) const
{
    std::uint64_t n = 0;
    for (unsigned o = order; o <= maxOrd; ++o)
        n += freeCount[o];
    return n;
}

int
BuddyAllocator::largestFreeOrder() const
{
    for (int o = static_cast<int>(maxOrd); o >= 0; --o)
        if (freeCount[static_cast<unsigned>(o)] != 0)
            return o;
    return -1;
}

bool
BuddyAllocator::isAllocated(FrameNum frame) const
{
    if (!inRange(frame))
        return false;
    frame -= fbase;
    if (meta[frame].state != State::Body)
        return meta[frame].state == State::AllocHead;
    return !blockAt(frame).free;
}

bool
BuddyAllocator::isAllocatedHead(FrameNum frame) const
{
    if (!inRange(frame))
        return false;
    return meta[frame - fbase].state == State::AllocHead;
}

unsigned
BuddyAllocator::orderOf(FrameNum frame) const
{
    GPSM_ASSERT(inRange(frame) &&
                meta[frame - fbase].state == State::AllocHead);
    return meta[frame - fbase].order;
}

Migratetype
BuddyAllocator::migratetypeOf(FrameNum frame) const
{
    GPSM_ASSERT(inRange(frame) &&
                meta[frame - fbase].state == State::AllocHead);
    return meta[frame - fbase].mt;
}

std::uint16_t
BuddyAllocator::clientOf(FrameNum frame) const
{
    GPSM_ASSERT(inRange(frame) &&
                meta[frame - fbase].state == State::AllocHead);
    return meta[frame - fbase].client;
}

FrameNum
BuddyAllocator::headOf(FrameNum frame) const
{
    GPSM_ASSERT(inRange(frame));
    const BlockInfo b = blockAt(frame - fbase);
    return b.free ? invalidFrame : b.head + fbase;
}

BuddyAllocator::BlockInfo
BuddyAllocator::blockOf(FrameNum frame) const
{
    GPSM_ASSERT(inRange(frame));
    BlockInfo b = blockAt(frame - fbase);
    b.head += fbase;
    return b;
}

const BuddyAllocator::RegionCounts &
BuddyAllocator::regionCounts(std::uint64_t region_index) const
{
    GPSM_ASSERT(region_index < regions());
    return regionInfo[region_index];
}

BuddyAllocator::RegionSummary
BuddyAllocator::summarizeRegion(FrameNum region_head) const
{
    RegionSummary s;
    summarizeRegion(region_head, s);
    return s;
}

void
BuddyAllocator::summarizeRegion(FrameNum region_head,
                                RegionSummary &out) const
{
    const std::uint64_t region_size = 1ull << maxOrd;
    GPSM_ASSERT(inRange(region_head));
    region_head -= fbase;
    GPSM_ASSERT(isAligned(region_head, region_size) &&
                region_head + region_size <= nframes);

    const RegionCounts &rc = regionInfo[region_head >> maxOrd];
    out.freeFrames = rc.freeFrames;
    out.movableFrames = rc.movableFrames;
    out.unmovableFrames = rc.unmovableFrames;
    out.pinnedFrames = rc.pinnedFrames;
    out.movableHeads.clear();
    if (rc.movableFrames == 0)
        return;

    // Blocks never straddle maxOrd regions, so every step of this walk
    // lands on a head frame.
    FrameNum f = region_head;
    const FrameNum end = region_head + region_size;
    while (f < end) {
        const Frame &fr = meta[f];
        GPSM_ASSERT(fr.state != State::Body,
                    "region walk hit a body frame");
        if (fr.state == State::AllocHead &&
            fr.mt == Migratetype::Movable) {
            out.movableHeads.push_back(f + fbase);
        }
        f += 1ull << fr.order;
    }
}

double
BuddyAllocator::fragmentationLevel() const
{
    if (nfree == 0)
        return 0.0;
    const std::uint64_t huge_free = freeCount[maxOrd] * (1ull << maxOrd);
    return 1.0 - static_cast<double>(huge_free) /
                     static_cast<double>(nfree);
}

void
BuddyAllocator::checkInvariants() const
{
    std::uint64_t free_count = 0;
    std::vector<std::uint64_t> free_blocks(maxOrd + 1, 0);
    std::vector<std::vector<std::uint64_t>> expect_bits(maxOrd + 1);
    for (unsigned o = 0; o <= maxOrd; ++o)
        expect_bits[o].assign(pairBits[o].size(), 0);
    std::vector<RegionCounts> expect_regions(regionInfo.size(),
                                             RegionCounts{});

    FrameNum f = 0;
    while (f < nframes) {
        const Frame &fr = meta[f];
        if (fr.state == State::Body)
            panic("frame %llu: body frame where head expected",
                  static_cast<unsigned long long>(f));
        const std::uint64_t block = 1ull << fr.order;
        if (!isAligned(f, block))
            panic("frame %llu: misaligned order-%u block",
                  static_cast<unsigned long long>(f), unsigned(fr.order));
        if (f + block > nframes)
            panic("frame %llu: block overruns node",
                  static_cast<unsigned long long>(f));
        for (std::uint64_t i = 1; i < block; ++i) {
            if (meta[f + i].state != State::Body)
                panic("frame %llu: stale head state inside block %llu",
                      static_cast<unsigned long long>(f + i),
                      static_cast<unsigned long long>(f));
        }
        RegionCounts &er = expect_regions[f >> maxOrd];
        if (fr.state == State::FreeHead) {
            free_count += block;
            ++free_blocks[fr.order];
            er.freeFrames += block;
            const std::uint64_t idx = f >> (fr.order + 1);
            expect_bits[fr.order][idx >> 6] ^= 1ull << (idx & 63);
            // Eager coalescing: the buddy must not also be a free block
            // of the same order.
            FrameNum buddy = f ^ block;
            if (buddy + block <= nframes &&
                meta[buddy].state == State::FreeHead &&
                meta[buddy].order == fr.order && fr.order < maxOrd) {
                panic("frames %llu/%llu: uncoalesced free buddies",
                      static_cast<unsigned long long>(f),
                      static_cast<unsigned long long>(buddy));
            }
        } else {
            switch (fr.mt) {
              case Migratetype::Movable:
                er.movableFrames += block;
                if (fr.order == maxOrd)
                    ++er.movableHugeBlocks;
                break;
              case Migratetype::Unmovable:
                er.unmovableFrames += block;
                break;
              case Migratetype::Pinned:
                er.pinnedFrames += block;
                break;
            }
        }
        f += block;
    }
    if (free_count != nfree)
        panic("free frame accounting mismatch: walked %llu, counter %llu",
              static_cast<unsigned long long>(free_count),
              static_cast<unsigned long long>(nfree));

    // Free lists must reference exactly the FreeHead frames, and the
    // cached per-order counters must match the list walks (the walk
    // survives only here, as a cross-check).
    std::uint64_t listed = 0;
    for (unsigned o = 0; o <= maxOrd; ++o) {
        std::uint64_t walked = 0;
        for (FrameNum h = freeListHead[o]; h != invalidFrame;
             h = nextFree[h]) {
            if (meta[h].state != State::FreeHead || meta[h].order != o)
                panic("free list %u contains non-free frame %llu", o,
                      static_cast<unsigned long long>(h));
            ++walked;
            listed += 1ull << o;
        }
        if (walked != freeCount[o])
            panic("order %u free counter %llu != list length %llu", o,
                  static_cast<unsigned long long>(freeCount[o]),
                  static_cast<unsigned long long>(walked));
        if (walked != free_blocks[o])
            panic("order %u free list misses heads", o);
        if (expect_bits[o] != pairBits[o])
            panic("order %u pair bitmap out of sync", o);
    }
    if (listed != nfree)
        panic("free list coverage mismatch");

    for (std::size_t r = 0; r < regionInfo.size(); ++r) {
        const RegionCounts &have = regionInfo[r];
        const RegionCounts &want = expect_regions[r];
        if (have.freeFrames != want.freeFrames ||
            have.movableFrames != want.movableFrames ||
            have.unmovableFrames != want.unmovableFrames ||
            have.pinnedFrames != want.pinnedFrames ||
            have.movableHugeBlocks != want.movableHugeBlocks) {
            panic("region %llu counters out of sync",
                  static_cast<unsigned long long>(r));
        }
    }
}

std::string
BuddyAllocator::dumpFreeLists() const
{
    std::ostringstream os;
    for (unsigned o = 0; o <= maxOrd; ++o)
        os << "order " << o << ": " << freeCount[o]
           << " free blocks\n";
    return os.str();
}

} // namespace gpsm::mem
