/**
 * @file
 * Memhog implementation.
 */

#include "mem/memhog.hh"

#include "mem/memory_node.hh"
#include "util/logging.hh"

namespace gpsm::mem
{

Memhog::Memhog(MemoryNode &target) : node(target)
{
    clientId = node.registerClient(this);
}

Memhog::~Memhog()
{
    release();
}

std::uint64_t
Memhog::occupy(std::uint64_t bytes)
{
    BuddyAllocator &buddy = node.buddy();
    const std::uint64_t page = node.basePageBytes();
    std::uint64_t want_frames = bytes / page;
    std::uint64_t got_frames = 0;

    // Largest-first to occupy space without shredding free regions.
    int order = static_cast<int>(buddy.maxOrder());
    while (want_frames > 0 && order >= 0) {
        const std::uint64_t block = 1ull << order;
        if (block > want_frames) {
            --order;
            continue;
        }
        FrameNum head = buddy.allocate(static_cast<unsigned>(order),
                                       Migratetype::Pinned, clientId);
        if (head == invalidFrame) {
            --order;
            continue;
        }
        blocks.push_back(head);
        got_frames += block;
        want_frames -= block;
    }
    heldFrames += got_frames;
    return got_frames * page;
}

std::uint64_t
Memhog::occupyAllBut(std::uint64_t bytes)
{
    const std::uint64_t free_now = node.freeBytes();
    if (free_now <= bytes)
        return 0;
    return occupy(free_now - bytes);
}

void
Memhog::release()
{
    for (FrameNum head : blocks)
        node.free(head);
    blocks.clear();
    heldFrames = 0;
}

std::uint64_t
Memhog::heldBytes() const
{
    return heldFrames * node.basePageBytes();
}

void
Memhog::migratePage(FrameNum, FrameNum)
{
    panic("memhog pages are pinned and must never migrate");
}

} // namespace gpsm::mem
