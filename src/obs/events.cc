/**
 * @file
 * EventBus implementation: bounded fan-out of serialized
 * gpsm-event-v1 records.
 */

#include "obs/events.hh"

#include <algorithm>
#include <chrono>

namespace gpsm::obs
{

std::optional<std::string>
EventBus::Subscription::pop(double timeout_seconds)
{
    std::unique_lock<std::mutex> lk(mtx);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_seconds));
    while (queue.empty()) {
        if (closed)
            return std::nullopt;
        if (cv.wait_until(lk, deadline) == std::cv_status::timeout &&
            queue.empty())
            return std::nullopt;
    }
    std::shared_ptr<const std::string> line = queue.front();
    queue.pop_front();
    deliveredCount.fetch_add(1, std::memory_order_relaxed);
    return *line;
}

void
EventBus::Subscription::close()
{
    {
        std::lock_guard<std::mutex> lk(mtx);
        closed = true;
    }
    cv.notify_all();
}

bool
EventBus::Subscription::push(
    const std::shared_ptr<const std::string> &line)
{
    {
        std::lock_guard<std::mutex> lk(mtx);
        if (closed)
            return true; // Not counted against the subscriber.
        if (queue.size() >= cap) {
            droppedCount.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        queue.push_back(line);
    }
    cv.notify_one();
    return true;
}

EventBus &
EventBus::instance()
{
    static EventBus bus;
    return bus;
}

EventBus::SubPtr
EventBus::subscribe(std::size_t capacity)
{
    auto sub = std::make_shared<Subscription>(capacity);
    std::lock_guard<std::mutex> lk(mtx);
    subs.push_back(sub);
    ++subscribersEver;
    subscriberCount.store(subs.size(), std::memory_order_relaxed);
    return sub;
}

void
EventBus::unsubscribe(const SubPtr &sub)
{
    if (sub == nullptr)
        return;
    sub->close();
    std::lock_guard<std::mutex> lk(mtx);
    subs.erase(std::remove(subs.begin(), subs.end(), sub),
               subs.end());
    subscriberCount.store(subs.size(), std::memory_order_relaxed);
    droppedTotal += sub->dropped();
    deliveredTotal += sub->delivered();
}

std::uint64_t
EventBus::publish(Json event)
{
    std::lock_guard<std::mutex> lk(mtx);
    if (subs.empty())
        return 0;
    event.set("seq", Json(seq++));
    ++publishedCount;
    auto line =
        std::make_shared<const std::string>(event.dump() + "\n");
    std::uint64_t drops = 0;
    for (const SubPtr &sub : subs)
        if (!sub->push(line))
            ++drops;
    return drops;
}

std::uint64_t
EventBus::published() const
{
    std::lock_guard<std::mutex> lk(mtx);
    return publishedCount;
}

std::uint64_t
EventBus::delivered() const
{
    std::lock_guard<std::mutex> lk(mtx);
    std::uint64_t n = deliveredTotal;
    for (const SubPtr &sub : subs)
        n += sub->delivered();
    return n;
}

std::uint64_t
EventBus::dropped() const
{
    std::lock_guard<std::mutex> lk(mtx);
    std::uint64_t n = droppedTotal;
    for (const SubPtr &sub : subs)
        n += sub->dropped();
    return n;
}

std::uint64_t
EventBus::totalSubscribers() const
{
    std::lock_guard<std::mutex> lk(mtx);
    return subscribersEver;
}

bool
eventStreamActive()
{
    return EventBus::instance().active();
}

Json
makeEvent(const char *type, const std::string &run)
{
    Json ev = Json::object();
    ev.set("schema", Json(eventSchema));
    ev.set("type", Json(type));
    ev.set("run", Json(run));
    return ev;
}

void
RunEventPublisher::publish(Json event)
{
    ++publishedCount;
    dropCount += EventBus::instance().publish(std::move(event));
}

void
RunEventPublisher::publishRunBegin(const std::string &fingerprint)
{
    Json ev = makeEvent("run_begin", run);
    ev.set("label", Json(label));
    ev.set("fingerprint", Json(fingerprint));
    ev.set("clock", Json(clock.value()));
    publish(std::move(ev));
}

void
RunEventPublisher::publishEpoch(const TimeSeriesSampler::Epoch &epoch)
{
    Json ev = makeEvent("epoch", run);
    ev.set("clock", Json(epoch.clock));
    ev.set("epoch", Json(epoch.index));
    Json deltas = Json::object();
    for (const auto &[stat, delta] : epoch.deltas)
        deltas.set(stat, Json(delta));
    ev.set("deltas", std::move(deltas));
    Json gauges = Json::object();
    for (const auto &[gauge, value] : epoch.gauges)
        gauges.set(gauge, Json(value));
    ev.set("gauges", std::move(gauges));
    publish(std::move(ev));
}

void
RunEventPublisher::publishRunEnd(const Json &result)
{
    Json ev = makeEvent("run_end", run);
    ev.set("clock", Json(clock.value()));
    ev.set("label", Json(label));
    ev.set("result", result);
    publish(std::move(ev));
}

void
RunEventPublisher::traceEvent(TraceKind kind, std::uint64_t detail,
                              const char *name)
{
    Json ev = makeEvent(traceKindName(kind), run);
    if (kind == TraceKind::PhaseBegin || kind == TraceKind::PhaseEnd) {
        ev.set("name", Json(name != nullptr ? name : ""));
        ev.set("clock", Json(clock.value()));
    } else {
        ev.set("detail", Json(detail));
        ev.set("site", Json(name != nullptr ? name : ""));
        ev.set("clock", Json(clock.value()));
    }
    publish(std::move(ev));
}

} // namespace gpsm::obs
