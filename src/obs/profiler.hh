/**
 * @file
 * Host-side phase profiler: wall-time per experiment phase.
 *
 * Unlike everything else in obs/, this layer measures the *simulator*
 * (host wall-clock per phase), not the simulated machine — the numbers
 * that tell us which scalar path to tighten next. It follows the same
 * dormancy discipline as telemetry: profiling is requested process-wide
 * via setProfiling() (bench --profile / GPSM_PROF=1); with it unset
 * (the default) every ProfScope is a no-op, nothing is accumulated, no
 * file or document gains a byte, and a run is bit-identical to a build
 * without this layer.
 *
 * Accumulation is per-thread for the run phases (one experiment runs
 * wholly on one pool worker), folded into a mutex-guarded process
 * aggregate when the run finishes, so --jobs parallelism never
 * interleaves two runs' breakdowns.
 */

#ifndef GPSM_OBS_PROFILER_HH
#define GPSM_OBS_PROFILER_HH

#include <chrono>
#include <cstddef>
#include <cstdint>

namespace gpsm::obs
{

/**
 * The fixed phase vocabulary. Build/Load/Kernel/Verify partition a
 * live run; ReplayDecode/ReplayDispatch replace Kernel on replayed
 * runs (decode-once trace compilation and the compiled dispatch loop).
 */
enum class ProfPhase : unsigned
{
    Build = 0,      ///< dataset generation + preprocessing (reorder)
    Load,           ///< machine assembly, aging, view load, khugepaged
    Kernel,         ///< live kernel execution through the MMU
    Verify,         ///< output checksumming
    ReplayDecode,   ///< varint stream -> compiled fixed-width records
    ReplayDispatch, ///< compiled-record feed through the MMU
};

constexpr std::size_t profPhaseCount = 6;

const char *profPhaseName(ProfPhase phase);

/** Request (or drop) process-wide profiling. Set before the first
 *  experiment, like setTelemetry()/setReplay(). */
void setProfiling(bool on);
bool profilingEnabled();

/** Wall seconds per phase — one run's breakdown, or an aggregate. */
struct PhaseBreakdown
{
    double seconds[profPhaseCount] = {};

    double
    total() const
    {
        double t = 0.0;
        for (double s : seconds)
            t += s;
        return t;
    }
};

/** Process-wide aggregate across finished runs. */
struct ProfTotals
{
    PhaseBreakdown phases;
    std::uint64_t runs = 0;
};

/** Clear the calling thread's in-flight per-run accumulators (run
 *  start). No-op while profiling is off. */
void profBeginRun();

/**
 * Take the calling thread's per-run breakdown (run end): returns it,
 * clears the thread-local state and folds it into the process totals.
 * Returns a zero breakdown while profiling is off.
 */
PhaseBreakdown profEndRun();

/** Snapshot of the process aggregate (batch deltas, batches.jsonl). */
ProfTotals profTotals();

/** Drop the process aggregate (tests). */
void profReset();

/**
 * RAII phase timer. Constructed cheaply when profiling is off (one
 * branch, no clock read). stop() makes split phases possible (a scope
 * opened in runExperiment and closed inside the kernel lambda).
 */
class ProfScope
{
  public:
    explicit ProfScope(ProfPhase phase);
    ~ProfScope() { stop(); }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

    /** Charge the elapsed time to the phase; idempotent. */
    void stop();

  private:
    ProfPhase phase;
    bool active = false;
    std::chrono::steady_clock::time_point start;
};

} // namespace gpsm::obs

#endif // GPSM_OBS_PROFILER_HH
