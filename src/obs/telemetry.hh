/**
 * @file
 * Run telemetry: phase-bucketed time-series sampling of a machine's
 * StatSet, discrete-event tracing, and export as Chrome trace_event
 * JSON (Perfetto-loadable), compact JSONL, and per-run metrics
 * documents.
 *
 * Everything here is opt-in and observation-only. Telemetry is
 * requested process-wide via setTelemetry(); with it unset (the
 * default) no hook is installed anywhere, no file is written, and a
 * run is bit-identical to a build without this layer — the same
 * discipline the fault layer applies to dormant plans. The sampler is
 * clocked on the simulated access counter (Mmu::accesses), not wall
 * time, so sampled series are deterministic and identical at any
 * --jobs level.
 */

#ifndef GPSM_OBS_TELEMETRY_HH
#define GPSM_OBS_TELEMETRY_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/hooks.hh"
#include "obs/json.hh"
#include "util/stats.hh"

namespace gpsm::obs
{

/** Process-wide telemetry request (set once, before experiments). */
struct TelemetryOptions
{
    /**
     * Directory receiving one metrics JSON (and, when sampling, one
     * trace JSON + one series JSONL) per executed run. Empty disables
     * telemetry entirely.
     */
    std::string metricsDir;

    /**
     * Sampler epoch length in traced accesses. 0 disables the
     * time-series sampler (metrics documents are still written).
     */
    std::uint64_t sampleInterval = 1u << 20;
};

/**
 * Install the process-wide telemetry request. Not thread-safe against
 * in-flight experiments: call before the first run (bench option
 * parsing), or between batches. Creates @p options.metricsDir (one
 * level) when needed. Passing a default-constructed TelemetryOptions
 * with an empty metricsDir turns telemetry back off.
 */
void setTelemetry(const TelemetryOptions &options);

/** The active request (meaningful only when telemetryEnabled()). */
const TelemetryOptions &telemetry();

/** True when a metrics directory has been requested. */
bool telemetryEnabled();

/** 16-hex-digit FNV-1a fingerprint hash: the per-run file identity. */
std::string runId(const std::string &fingerprint);

/** mkdir -p (single level per call); true when the dir exists after. */
bool ensureDir(const std::string &path);

/** Durable whole-file write (temp file + rename). */
bool writeFileAtomic(const std::string &path,
                     const std::string &content);

/**
 * Epoch-bucketed StatSet sampler.
 *
 * tick() — driven by the Mmu's sample hook every interval accesses —
 * snapshots the machine StatSet and stores the delta since the
 * previous epoch, plus any gauges (point-in-time values such as
 * per-array huge coverage) from the installed provider. Zero-valued
 * deltas are dropped so long quiet phases stay compact. finish()
 * captures the trailing partial epoch.
 */
class TimeSeriesSampler
{
  public:
    struct Epoch
    {
        std::uint64_t index = 0;
        std::uint64_t clock = 0; ///< Mmu::accesses at capture
        std::map<std::string, std::uint64_t> deltas;
        std::vector<std::pair<std::string, std::uint64_t>> gauges;
    };

    /** Point-in-time gauge values, re-evaluated every epoch. */
    using GaugeProvider = std::function<
        std::vector<std::pair<std::string, std::uint64_t>>()>;

    /**
     * @param stats The machine StatSet (outlives the sampler).
     * @param clock The access counter epochs are stamped with.
     * @param interval Epoch length in accesses (documentation only;
     *        ticking is driven externally).
     */
    TimeSeriesSampler(const StatSet &stats, const Counter &clock,
                      std::uint64_t interval);

    void setGaugeProvider(GaugeProvider provider)
    {
        gauges = std::move(provider);
    }

    /**
     * Capture one epoch (called from the Mmu sample hook).
     * @return the captured epoch (owned by the sampler, stable until
     *         the next capture may reallocate), or nullptr when the
     *         tick fell past maxEpochs and was counted as dropped —
     *         live consumers forward exactly the epochs that were
     *         kept.
     */
    const Epoch *tick();

    /**
     * Capture the trailing partial epoch (if anything accumulated).
     * @return the epoch as tick(), or nullptr when nothing moved.
     */
    const Epoch *finish();

    const std::vector<Epoch> &epochs() const { return series; }
    std::uint64_t interval() const { return epochInterval; }

    /** Epoch capacity guard: ticks past this are counted, not kept. */
    static constexpr std::size_t maxEpochs = 1u << 16;
    std::uint64_t droppedEpochs() const { return dropped; }

  private:
    const StatSet &stats;
    const Counter &clock;
    std::uint64_t epochInterval;
    std::map<std::string, std::uint64_t> prev;
    std::vector<Epoch> series;
    GaugeProvider gauges;
    std::uint64_t dropped = 0;
};

/**
 * Discrete-event recorder: the TraceHook implementation installed
 * into the address space, memory node and fault session while a
 * telemetry session is live. Events are stamped with the simulated
 * access clock and capped (counted past the cap, not kept).
 */
class TraceSink final : public TraceHook
{
  public:
    struct Event
    {
        std::uint64_t clock = 0;
        TraceKind kind = TraceKind::Promotion;
        std::uint64_t detail = 0;
        /** Site label, copied: the emitting object (a VMA, a fault
         *  session) may be torn down before the trace is exported. */
        std::string name;
    };

    explicit TraceSink(const Counter &clock) : clock(clock) {}

    void
    traceEvent(TraceKind kind, std::uint64_t detail,
               const char *name) override
    {
        ++total;
        if (recorded.size() >= capacity) {
            ++dropped;
            return;
        }
        recorded.push_back(Event{clock.value(), kind, detail,
                                 name != nullptr ? name : ""});
    }

    const std::vector<Event> &events() const { return recorded; }
    std::uint64_t totalEvents() const { return total; }
    std::uint64_t droppedEvents() const { return dropped; }

    static constexpr std::size_t capacity = 1u << 16;

  private:
    const Counter &clock;
    std::vector<Event> recorded;
    std::uint64_t total = 0;
    std::uint64_t dropped = 0;
};

/**
 * Build the Chrome trace_event document ("ts" is the simulated access
 * clock, in simulated-microsecond units for Perfetto's benefit):
 * phase Begin/End pairs, instant events for the discrete kinds, and
 * one counter track per sampled series group. @p run_id lands in
 * otherData so the trace joins the wire response, metrics document
 * and journal record on one id.
 */
Json buildTraceJson(const TraceSink &sink,
                    const TimeSeriesSampler *sampler,
                    const std::string &label,
                    const std::string &run_id);

/**
 * Compact JSONL series: a header line ({"run","label","interval"})
 * followed by one line per epoch.
 */
std::string buildSeriesJsonl(const TimeSeriesSampler &sampler,
                             const std::string &run_id,
                             const std::string &label);

/**
 * Write the per-run files for one executed experiment into
 * @p options.metricsDir: run_<id>.json always; trace_<id>.json and
 * series_<id>.jsonl when @p sampler or trace events exist.
 *
 * @param result  The "result" object (RunResult fields, numeric).
 * @param stats   The "stats" object (final StatSet values).
 * @param extra   Optional extra top-level members (app, dataset, ...).
 * @param events  Optional "events" section describing a live event
 *                stream that observed this run ({"published",
 *                "subscriberDrops"}); pass a null Json when no stream
 *                was live so dormant documents stay byte-identical.
 * @param profile Optional "profile" section (host wall seconds per
 *                phase, obs/profiler.hh); pass a null Json when the
 *                profiler is dormant, same discipline as @p events.
 * @return path of the metrics document ("" when the write failed).
 */
std::string writeRunTelemetry(const TelemetryOptions &options,
                              const std::string &label,
                              const std::string &fingerprint,
                              const TraceSink &sink,
                              const TimeSeriesSampler *sampler,
                              Json result, Json stats, Json extra,
                              Json events = Json(),
                              Json profile = Json());

/**
 * Live batch progress renderer for ExperimentPool runs, built on the
 * pool's Progress callback. Opt-in (bench --progress); writes lines
 * to stderr only, so bench stdout is unaffected. Thread-safe: the
 * pool invokes callbacks from worker threads.
 *
 * The ETA folds in the observed memo/journal hit rate: cached results
 * are ~free, so remaining work is estimated as
 *   remaining * (1 - hit_rate) * mean_uncached_wall.
 */
class ProgressMeter
{
  public:
    ProgressMeter(std::size_t total, std::string batch_label);

    /** One config finished successfully. */
    void onResult(double wall_seconds, bool cached);

    /** One config failed (error outcome). */
    void onError();

    /**
     * Raise the expected total by @p n. Live viewers (gpsm_top) learn
     * the batch size incrementally as admission events stream in.
     */
    void grow(std::size_t n);

    /** Emit the closing summary line. */
    void finish();

    /**
     * Suppress the stderr progress lines. Consumers that render their
     * own display (gpsm_top) keep the bookkeeping and ETA math but
     * own the terminal.
     */
    void setSilent(bool on);

    std::size_t done() const;
    std::size_t failed() const;

    /**
     * Hit-rate-weighted remaining-work estimate in seconds, or -1
     * before any completion has calibrated it. For consumers that
     * render their own display instead of the stderr line.
     */
    double etaSeconds() const;

  private:
    void render();
    double etaLocked() const;

    mutable std::mutex mtx;
    std::string label;
    std::size_t total;
    std::size_t completed = 0;
    std::size_t cachedCount = 0;
    std::size_t failedCount = 0;
    double uncachedWall = 0.0;
    bool silent = false;
    std::chrono::steady_clock::time_point start;
};

} // namespace gpsm::obs

#endif // GPSM_OBS_TELEMETRY_HH
