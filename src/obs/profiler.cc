/**
 * @file
 * Phase profiler implementation.
 */

#include "obs/profiler.hh"

#include <mutex>

namespace gpsm::obs
{

namespace
{

bool gProfiling = false;

/** In-flight per-run accumulators of the calling thread. */
thread_local PhaseBreakdown tRun;

std::mutex &
totalsMutex()
{
    static std::mutex m;
    return m;
}

ProfTotals &
totals()
{
    static ProfTotals t;
    return t;
}

} // namespace

const char *
profPhaseName(ProfPhase phase)
{
    switch (phase) {
      case ProfPhase::Build: return "build";
      case ProfPhase::Load: return "load";
      case ProfPhase::Kernel: return "kernel";
      case ProfPhase::Verify: return "verify";
      case ProfPhase::ReplayDecode: return "replay_decode";
      case ProfPhase::ReplayDispatch: return "replay_dispatch";
    }
    return "?";
}

void
setProfiling(bool on)
{
    gProfiling = on;
}

bool
profilingEnabled()
{
    return gProfiling;
}

void
profBeginRun()
{
    if (!gProfiling)
        return;
    tRun = PhaseBreakdown{};
}

PhaseBreakdown
profEndRun()
{
    if (!gProfiling)
        return PhaseBreakdown{};
    const PhaseBreakdown run = tRun;
    tRun = PhaseBreakdown{};
    std::lock_guard<std::mutex> lock(totalsMutex());
    ProfTotals &t = totals();
    for (std::size_t i = 0; i < profPhaseCount; ++i)
        t.phases.seconds[i] += run.seconds[i];
    ++t.runs;
    return run;
}

ProfTotals
profTotals()
{
    std::lock_guard<std::mutex> lock(totalsMutex());
    return totals();
}

void
profReset()
{
    std::lock_guard<std::mutex> lock(totalsMutex());
    totals() = ProfTotals{};
    tRun = PhaseBreakdown{};
}

ProfScope::ProfScope(ProfPhase phase) : phase(phase)
{
    if (!gProfiling)
        return;
    active = true;
    start = std::chrono::steady_clock::now();
}

void
ProfScope::stop()
{
    if (!active)
        return;
    active = false;
    tRun.seconds[static_cast<unsigned>(phase)] +=
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
}

} // namespace gpsm::obs
