/**
 * @file
 * JSON parser/writer implementation.
 */

#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace gpsm::obs
{

void
Json::set(const std::string &key, Json v)
{
    kind_ = Kind::Object;
    for (auto &[k, val] : members) {
        if (k == key) {
            val = std::move(v);
            return;
        }
    }
    members.emplace_back(key, std::move(v));
}

const Json *
Json::find(const std::string &key) const
{
    for (const auto &[k, val] : members)
        if (k == key)
            return &val;
    return nullptr;
}

void
jsonEscape(const std::string &s, std::string &out)
{
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

namespace
{

void
appendNumber(std::string &out, double d)
{
    // Integral values (counters, clocks) print exactly; everything
    // else round-trips through %.17g.
    if (std::isfinite(d) && d == std::floor(d) &&
        std::fabs(d) < 9.007199254740992e15 /* 2^53 */) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(d));
        out += buf;
        return;
    }
    if (!std::isfinite(d)) {
        out += "null"; // JSON has no Inf/NaN
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
}

void
appendIndent(std::string &out, int indent, int depth)
{
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += boolean ? "true" : "false";
        break;
      case Kind::Number:
        appendNumber(out, number);
        break;
      case Kind::String:
        out += '"';
        jsonEscape(str, out);
        out += '"';
        break;
      case Kind::Array: {
        out += '[';
        bool first = true;
        for (const Json &v : items) {
            if (!first)
                out += ',';
            first = false;
            if (indent > 0)
                appendIndent(out, indent, depth + 1);
            v.dumpTo(out, indent, depth + 1);
        }
        if (indent > 0 && !items.empty())
            appendIndent(out, indent, depth);
        out += ']';
        break;
      }
      case Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto &[k, v] : members) {
            if (!first)
                out += ',';
            first = false;
            if (indent > 0)
                appendIndent(out, indent, depth + 1);
            out += '"';
            jsonEscape(k, out);
            out += '"';
            out += indent > 0 ? ": " : ":";
            v.dumpTo(out, indent, depth + 1);
        }
        if (indent > 0 && !members.empty())
            appendIndent(out, indent, depth);
        out += '}';
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace
{

/** Recursive-descent parser over a byte range. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : s(text) {}

    std::optional<Json>
    parse()
    {
        skipWs();
        auto v = parseValue();
        if (!v)
            return std::nullopt;
        skipWs();
        if (pos != s.size())
            return fail();
        return v;
    }

    std::size_t errorOffset() const { return errPos; }

  private:
    std::optional<Json>
    fail()
    {
        if (errPos == 0)
            errPos = pos;
        return std::nullopt;
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (s.compare(pos, n, word) != 0)
            return false;
        pos += n;
        return true;
    }

    std::optional<Json>
    parseValue()
    {
        if (pos >= s.size())
            return fail();
        // Depth guard: a hostile or corrupt document must not smash
        // the stack.
        if (depth > 128)
            return fail();
        switch (s[pos]) {
          case 'n':
            return literal("null") ? std::optional<Json>(Json())
                                   : fail();
          case 't':
            return literal("true") ? std::optional<Json>(Json(true))
                                   : fail();
          case 'f':
            return literal("false") ? std::optional<Json>(Json(false))
                                    : fail();
          case '"':
            return parseString();
          case '[':
            return parseArray();
          case '{':
            return parseObject();
          default:
            return parseNumber();
        }
    }

    std::optional<Json>
    parseNumber()
    {
        const char *start = s.c_str() + pos;
        char *end = nullptr;
        const double d = std::strtod(start, &end);
        if (end == start)
            return fail();
        pos += static_cast<std::size_t>(end - start);
        return Json(d);
    }

    std::optional<Json>
    parseString()
    {
        std::string out;
        if (!parseRawString(out))
            return fail();
        return Json(std::move(out));
    }

    bool
    parseRawString(std::string &out)
    {
        if (pos >= s.size() || s[pos] != '"')
            return false;
        ++pos;
        while (pos < s.size()) {
            const char c = s[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c == '\\') {
                if (pos + 1 >= s.size())
                    return false;
                const char e = s[pos + 1];
                pos += 2;
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                    if (pos + 4 > s.size())
                        return false;
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = s[pos + i];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return false;
                    }
                    pos += 4;
                    // Encode the code point as UTF-8 (surrogate pairs
                    // are passed through as two 3-byte sequences; the
                    // writer never emits non-BMP escapes).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default:
                    return false;
                }
                continue;
            }
            out += c;
            ++pos;
        }
        return false; // unterminated
    }

    std::optional<Json>
    parseArray()
    {
        ++pos; // '['
        ++depth;
        Json arr = Json::array();
        skipWs();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            --depth;
            return arr;
        }
        for (;;) {
            skipWs();
            auto v = parseValue();
            if (!v)
                return std::nullopt;
            arr.push(std::move(*v));
            skipWs();
            if (pos >= s.size())
                return fail();
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == ']') {
                ++pos;
                --depth;
                return arr;
            }
            return fail();
        }
    }

    std::optional<Json>
    parseObject()
    {
        ++pos; // '{'
        ++depth;
        Json obj = Json::object();
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            --depth;
            return obj;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (!parseRawString(key))
                return fail();
            skipWs();
            if (pos >= s.size() || s[pos] != ':')
                return fail();
            ++pos;
            skipWs();
            auto v = parseValue();
            if (!v)
                return std::nullopt;
            obj.set(key, std::move(*v));
            skipWs();
            if (pos >= s.size())
                return fail();
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == '}') {
                ++pos;
                --depth;
                return obj;
            }
            return fail();
        }
    }

    const std::string &s;
    std::size_t pos = 0;
    std::size_t errPos = 0;
    int depth = 0;
};

} // namespace

std::optional<Json>
parseJson(const std::string &text, std::size_t *error_offset)
{
    Parser p(text);
    auto v = p.parse();
    if (!v && error_offset != nullptr)
        *error_offset = p.errorOffset();
    return v;
}

} // namespace gpsm::obs
