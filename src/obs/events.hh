/**
 * @file
 * Live run-event streaming: the process-wide EventBus behind the
 * gpsm_serve "subscribe" op and tools/gpsm_top.
 *
 * Producers (a running experiment's hook plumbing, the serve layer's
 * admission path) publish structured gpsm-event-v1 records; consumers
 * hold a bounded Subscription each. Publishing never blocks: a full
 * subscriber buffer drops the incoming record for that subscriber
 * only, and the drop is counted — a slow consumer can stall neither
 * the engine nor the other subscribers.
 *
 * Same dormancy discipline as the telemetry layer: with no
 * subscription open, active() is one relaxed atomic load and
 * publish() is never reached, so runs without a live consumer stay
 * bit-identical to a build without this file. The bus observes the
 * simulation (clocked on Mmu::accesses, like the TraceSink) and never
 * modifies it.
 *
 * Record shape (one JSON object per event, "schema":"gpsm-event-v1"):
 *   common     schema, type, run (16-hex runId or "" for daemon-level
 *              events), seq (bus-global, strictly increasing)
 *   run_begin  label, fingerprint, clock
 *   phase_begin / phase_end
 *              name ("init", "kernel"), clock
 *   promotion / demotion / compaction / fault_veto / fault_event
 *              detail (kind-specific count), site, clock
 *   epoch      epoch (index), clock, deltas {stat: delta}, gauges
 *   run_end    label, clock, result {RunResult fields}
 *   request_admitted / request_deduped / request_shed /
 *   request_start / request_done
 *              op ("run"/"sleep"), queueDepth, inFlight; request_done
 *              adds status, cached, wallSeconds
 */

#ifndef GPSM_OBS_EVENTS_HH
#define GPSM_OBS_EVENTS_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/hooks.hh"
#include "obs/json.hh"
#include "obs/telemetry.hh"
#include "util/stats.hh"

namespace gpsm::obs
{

/** The wire schema tag every streamed record carries. */
inline constexpr const char *eventSchema = "gpsm-event-v1";

/**
 * Process-wide fan-out bus for live run events. One instance();
 * thread-safe throughout (experiment workers publish concurrently
 * with serve-layer pump threads subscribing and popping).
 */
class EventBus
{
  public:
    /**
     * One consumer's bounded queue of serialized event lines.
     * pop() from exactly one thread; the bus pushes under its own
     * lock. A push against a full queue drops the *incoming* event
     * (never blocks, never displaces delivered history) and counts it.
     */
    class Subscription
    {
      public:
        explicit Subscription(std::size_t capacity)
            : cap(capacity == 0 ? 1 : capacity)
        {
        }

        /**
         * Next serialized event line, waiting up to
         * @p timeout_seconds. nullopt on timeout or after close().
         */
        std::optional<std::string> pop(double timeout_seconds);

        /** Wake any blocked pop() permanently (bus teardown). */
        void close();

        /** True after close(): pop() timeouts and closure are then
         *  distinguishable for pump loops. */
        bool isClosed() const
        {
            std::lock_guard<std::mutex> lk(mtx);
            return closed;
        }

        std::size_t capacity() const { return cap; }
        std::uint64_t delivered() const
        {
            return deliveredCount.load(std::memory_order_relaxed);
        }
        std::uint64_t dropped() const
        {
            return droppedCount.load(std::memory_order_relaxed);
        }

      private:
        friend class EventBus;

        /** @return false when the event was dropped (queue full). */
        bool push(const std::shared_ptr<const std::string> &line);

        const std::size_t cap;
        mutable std::mutex mtx;
        std::condition_variable cv;
        std::deque<std::shared_ptr<const std::string>> queue;
        bool closed = false;
        std::atomic<std::uint64_t> deliveredCount{0};
        std::atomic<std::uint64_t> droppedCount{0};
    };
    using SubPtr = std::shared_ptr<Subscription>;

    static EventBus &instance();

    /** Open a subscription with a buffer of @p capacity events. */
    SubPtr subscribe(std::size_t capacity);

    /** Close and detach @p sub (idempotent; null is a no-op). */
    void unsubscribe(const SubPtr &sub);

    /** True when at least one subscription is open (relaxed load:
     *  the dormant-path test producers gate publishing on). */
    bool active() const
    {
        return subscriberCount.load(std::memory_order_relaxed) > 0;
    }

    /**
     * Stamp @p event with the next "seq", serialize once, and push
     * the shared line to every open subscription. @return the number
     * of subscriber-side drops this event incurred (0 with room
     * everywhere — or with no subscribers at all).
     */
    std::uint64_t publish(Json event);

    /** @name Lifetime aggregates (metrics exporter) @{ */
    std::uint64_t published() const;
    std::uint64_t delivered() const;
    std::uint64_t dropped() const;
    std::uint64_t totalSubscribers() const;
    std::size_t subscribers() const
    {
        return subscriberCount.load(std::memory_order_relaxed);
    }
    /** @} */

  private:
    EventBus() = default;

    mutable std::mutex mtx;
    std::vector<SubPtr> subs;
    std::atomic<std::size_t> subscriberCount{0};
    std::uint64_t seq = 0;
    std::uint64_t publishedCount = 0;
    std::uint64_t deliveredTotal = 0;
    std::uint64_t droppedTotal = 0;
    std::uint64_t subscribersEver = 0;
};

/** EventBus::instance().active(): the producers' one-test guard. */
bool eventStreamActive();

/**
 * A gpsm-event-v1 record skeleton: schema, type and run set; the
 * caller adds type-specific members, then EventBus::publish() stamps
 * "seq". @p run is the 16-hex runId, or "" for daemon-level events.
 */
Json makeEvent(const char *type, const std::string &run);

/**
 * Per-run live publisher: the TraceHook installed (possibly tee'd
 * with a TraceSink) while a run streams. Maps phase and discrete
 * trace events onto bus records stamped with this run's id and the
 * simulated access clock, and offers the explicit run_begin / epoch /
 * run_end emissions the hook interface has no vocabulary for.
 */
class RunEventPublisher final : public TraceHook
{
  public:
    RunEventPublisher(std::string run_id, std::string label,
                      const Counter &clock)
        : run(std::move(run_id)), label(std::move(label)), clock(clock)
    {
    }

    void publishRunBegin(const std::string &fingerprint);
    void publishEpoch(const TimeSeriesSampler::Epoch &epoch);
    void publishRunEnd(const Json &result);

    void traceEvent(TraceKind kind, std::uint64_t detail,
                    const char *name) override;

    const std::string &runId() const { return run; }
    std::uint64_t published() const { return publishedCount; }
    /** Subscriber-side drops incurred by this run's events. */
    std::uint64_t subscriberDrops() const { return dropCount; }

  private:
    void publish(Json event);

    std::string run;
    std::string label;
    const Counter &clock;
    std::uint64_t publishedCount = 0;
    std::uint64_t dropCount = 0;
};

/** Fan one hook call out to two receivers (sink + live publisher). */
class TeeTraceHook final : public TraceHook
{
  public:
    TeeTraceHook(TraceHook *first, TraceHook *second)
        : a(first), b(second)
    {
    }

    void
    traceEvent(TraceKind kind, std::uint64_t detail,
               const char *name) override
    {
        if (a != nullptr)
            a->traceEvent(kind, detail, name);
        if (b != nullptr)
            b->traceEvent(kind, detail, name);
    }

  private:
    TraceHook *a;
    TraceHook *b;
};

} // namespace gpsm::obs

#endif // GPSM_OBS_EVENTS_HH
