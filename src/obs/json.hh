/**
 * @file
 * Minimal JSON value model, parser and writer for the telemetry layer.
 *
 * The repo takes no third-party dependencies, so the observability
 * subsystem carries its own small JSON implementation: enough to write
 * metrics documents and Chrome trace_event files, and to read them
 * back in gpsm_report. It is a strict subset of RFC 8259: UTF-8 pass-
 * through (no \uXXXX decoding beyond verbatim copy), doubles via
 * strtod/%.17g, and objects preserving insertion order so emitted
 * documents are deterministic and diffable.
 */

#ifndef GPSM_OBS_JSON_HH
#define GPSM_OBS_JSON_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace gpsm::obs
{

/**
 * One JSON value. A tagged union over the seven JSON kinds; object
 * members keep insertion order (deterministic output, stable diffs).
 */
class Json
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Json() : kind_(Kind::Null) {}
    Json(bool b) : kind_(Kind::Bool), boolean(b) {}
    Json(double d) : kind_(Kind::Number), number(d) {}
    Json(std::int64_t i)
        : kind_(Kind::Number), number(static_cast<double>(i))
    {
    }
    Json(std::uint64_t u)
        : kind_(Kind::Number), number(static_cast<double>(u))
    {
    }
    Json(int i) : kind_(Kind::Number), number(i) {}
    Json(std::string s) : kind_(Kind::String), str(std::move(s)) {}
    Json(const char *s) : kind_(Kind::String), str(s) {}

    static Json array() { Json j; j.kind_ = Kind::Array; return j; }
    static Json object() { Json j; j.kind_ = Kind::Object; return j; }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { return boolean; }
    double asNumber() const { return number; }
    const std::string &asString() const { return str; }

    /** @name Array access @{ */
    void push(Json v) { items.push_back(std::move(v)); }
    const std::vector<Json> &elements() const { return items; }
    std::size_t size() const
    {
        return kind_ == Kind::Object ? members.size() : items.size();
    }
    /** @} */

    /** @name Object access @{ */
    /** Set @p key (replacing an existing member in place). */
    void set(const std::string &key, Json v);
    /** Member lookup; nullptr when absent (or not an object). */
    const Json *find(const std::string &key) const;
    const std::vector<std::pair<std::string, Json>> &
    entries() const
    {
        return members;
    }
    /** @} */

    /**
     * Serialize. @p indent > 0 pretty-prints with that many spaces per
     * level; 0 produces the compact single-line form (JSONL-safe).
     * Numbers that hold integral values within uint64/int64 range are
     * written without a decimal point, so counters round-trip exactly.
     */
    std::string dump(int indent = 0) const;

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Json> items;
    std::vector<std::pair<std::string, Json>> members;
};

/** Append the JSON string escape of @p s (without quotes) to @p out. */
void jsonEscape(const std::string &s, std::string &out);

/**
 * Parse one JSON document. @return nullopt on any syntax error (with
 * the offending byte offset in @p error_offset when non-null).
 * Trailing non-whitespace after the document is an error.
 */
std::optional<Json> parseJson(const std::string &text,
                              std::size_t *error_offset = nullptr);

} // namespace gpsm::obs

#endif // GPSM_OBS_JSON_HH
