/**
 * @file
 * Narrow observability hook interface, in the style of the fault
 * layer's interceptors (mem::AllocationInterceptor): memory-management
 * components call a TraceHook — when one is installed — at the handful
 * of discrete events the telemetry layer records. With no hook
 * installed the event sites cost one null-pointer test on paths that
 * are already rare (promotion, compaction, fault vetoes), and the
 * simulation state they observe is never modified, so a hook-free run
 * is bit-identical to a build without the obs layer.
 *
 * This header is dependency-free so vm/, mem/ and fault/ can include
 * it without linking gpsm_obs; only the implementations (obs::
 * TraceSink) live in the obs library.
 */

#ifndef GPSM_OBS_HOOKS_HH
#define GPSM_OBS_HOOKS_HH

#include <cstdint>

namespace gpsm::obs
{

/** The discrete events the trace layer distinguishes. */
enum class TraceKind : std::uint8_t
{
    Promotion,      ///< khugepaged collapsed a huge region
    Demotion,       ///< a huge mapping was split back to base pages
    CompactionRun,  ///< one direct-compaction pass at the node
    FaultVeto,      ///< fault layer vetoed a huge allocation
    FaultEvent,     ///< fault layer applied a scheduled point event
    PhaseBegin,     ///< experiment phase started (init, kernel, ...)
    PhaseEnd,       ///< experiment phase ended
};

const char *traceKindName(TraceKind kind);

/**
 * Receiver for discrete trace events. Implemented by obs::TraceSink;
 * installed per machine by the telemetry session and removed before
 * the machine is torn down.
 */
class TraceHook
{
  public:
    virtual ~TraceHook() = default;

    /**
     * One discrete event. @p detail is kind-specific (pages copied by
     * a promotion, pages migrated by a compaction run, ...); @p name
     * optionally labels the event site (phase name, fault kind) and
     * must be a literal or otherwise outlive the call.
     */
    virtual void traceEvent(TraceKind kind, std::uint64_t detail,
                            const char *name) = 0;
};

} // namespace gpsm::obs

#endif // GPSM_OBS_HOOKS_HH
