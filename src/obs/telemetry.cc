/**
 * @file
 * Telemetry implementation: sampler, trace sink export, progress.
 */

#include "obs/telemetry.hh"

#include <cerrno>
#include <cstdio>
#include <sys/stat.h>
#include <sys/types.h>

#include "util/logging.hh"

namespace gpsm::obs
{

const char *
traceKindName(TraceKind kind)
{
    switch (kind) {
      case TraceKind::Promotion: return "promotion";
      case TraceKind::Demotion: return "demotion";
      case TraceKind::CompactionRun: return "compaction";
      case TraceKind::FaultVeto: return "fault_veto";
      case TraceKind::FaultEvent: return "fault_event";
      case TraceKind::PhaseBegin: return "phase_begin";
      case TraceKind::PhaseEnd: return "phase_end";
    }
    return "?";
}

namespace
{

TelemetryOptions gOptions;
bool gEnabled = false;

} // namespace

void
setTelemetry(const TelemetryOptions &options)
{
    gOptions = options;
    gEnabled = !options.metricsDir.empty();
    if (gEnabled && !ensureDir(options.metricsDir)) {
        warn("telemetry disabled: cannot create metrics dir '%s'",
             options.metricsDir.c_str());
        gEnabled = false;
    }
}

const TelemetryOptions &
telemetry()
{
    return gOptions;
}

bool
telemetryEnabled()
{
    return gEnabled;
}

std::string
runId(const std::string &fingerprint)
{
    // FNV-1a, same family the journal uses for record checksums.
    std::uint64_t h = 1469598103934665603ull;
    for (char c : fingerprint) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

bool
ensureDir(const std::string &path)
{
    if (path.empty())
        return false;
    if (::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST) {
        struct stat st;
        return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
    }
    return false;
}

bool
writeFileAtomic(const std::string &path, const std::string &content)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        return false;
    const bool ok =
        std::fwrite(content.data(), 1, content.size(), f) ==
        content.size();
    std::fclose(f);
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

TimeSeriesSampler::TimeSeriesSampler(const StatSet &stats,
                                     const Counter &clock,
                                     std::uint64_t interval)
    : stats(stats), clock(clock), epochInterval(interval),
      prev(stats.snapshot())
{
}

const TimeSeriesSampler::Epoch *
TimeSeriesSampler::tick()
{
    if (series.size() >= maxEpochs) {
        ++dropped;
        return nullptr;
    }
    Epoch e;
    e.index = series.size() + dropped;
    e.clock = clock.value();
    auto now = stats.snapshot();
    for (const auto &[name, value] : now) {
        auto it = prev.find(name);
        const std::uint64_t base = it == prev.end() ? 0 : it->second;
        if (value != base)
            e.deltas.emplace(name, value - base);
    }
    if (gauges)
        e.gauges = gauges();
    prev = std::move(now);
    series.push_back(std::move(e));
    return &series.back();
}

const TimeSeriesSampler::Epoch *
TimeSeriesSampler::finish()
{
    // The trailing partial epoch only exists if anything moved since
    // the last full one.
    const auto now = stats.snapshot();
    for (const auto &[name, value] : now) {
        auto it = prev.find(name);
        if (it == prev.end() || it->second != value)
            return tick();
    }
    return nullptr;
}

namespace
{

/** Counter tracks emitted into the Chrome trace (grouped by theme). */
struct CounterTrack
{
    const char *track;
    const char *arg;
    const char *stat;
};

constexpr CounterTrack counterTracks[] = {
    {"tlb", "dtlbMisses", "mmu.dtlbMisses"},
    {"tlb", "stlbHits", "mmu.stlbHits"},
    {"tlb", "walks", "mmu.walks"},
    {"faults", "minor", "space.minorFaults"},
    {"faults", "huge", "space.hugeFaults"},
    {"faults", "major", "space.majorFaults"},
    {"mm", "promotions", "space.promotions"},
    {"mm", "swapOut", "space.swapOutPages"},
    {"mm", "compactionRuns", "node.compactionRuns"},
};

Json
traceEventJson(const char *name, const char *ph, std::uint64_t ts)
{
    Json ev = Json::object();
    ev.set("name", name);
    ev.set("ph", ph);
    // ts is the simulated access clock; Chrome interprets it as
    // microseconds, which makes one "second" of trace = 1M accesses.
    ev.set("ts", ts);
    ev.set("pid", 1);
    ev.set("tid", 1);
    return ev;
}

} // namespace

Json
buildTraceJson(const TraceSink &sink, const TimeSeriesSampler *sampler,
               const std::string &label, const std::string &run_id)
{
    Json events = Json::array();

    for (const TraceSink::Event &e : sink.events()) {
        const char *name =
            !e.name.empty() ? e.name.c_str() : traceKindName(e.kind);
        switch (e.kind) {
          case TraceKind::PhaseBegin: {
            events.push(traceEventJson(name, "B", e.clock));
            break;
          }
          case TraceKind::PhaseEnd: {
            events.push(traceEventJson(name, "E", e.clock));
            break;
          }
          default: {
            Json ev = traceEventJson(traceKindName(e.kind), "i",
                                     e.clock);
            ev.set("s", "t");
            Json args = Json::object();
            args.set("detail", e.detail);
            if (!e.name.empty())
                args.set("site", e.name);
            ev.set("args", std::move(args));
            events.push(std::move(ev));
            break;
          }
        }
    }

    if (sampler != nullptr) {
        for (const TimeSeriesSampler::Epoch &e : sampler->epochs()) {
            // One counter event per themed track per epoch; Perfetto
            // renders each args key as a series on that track.
            const char *current = nullptr;
            Json args = Json::object();
            for (const CounterTrack &t : counterTracks) {
                if (current != nullptr &&
                    std::string(current) != t.track) {
                    Json ev = traceEventJson(current, "C", e.clock);
                    ev.set("args", std::move(args));
                    events.push(std::move(ev));
                    args = Json::object();
                }
                current = t.track;
                auto it = e.deltas.find(t.stat);
                args.set(t.arg,
                         it == e.deltas.end()
                             ? std::uint64_t(0)
                             : it->second);
            }
            if (current != nullptr) {
                Json ev = traceEventJson(current, "C", e.clock);
                ev.set("args", std::move(args));
                events.push(std::move(ev));
            }
            if (!e.gauges.empty()) {
                Json cov = Json::object();
                for (const auto &[name, value] : e.gauges)
                    cov.set(name, value);
                Json ev = traceEventJson("coverage", "C", e.clock);
                ev.set("args", std::move(cov));
                events.push(std::move(ev));
            }
        }
    }

    Json doc = Json::object();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", "ms");
    Json meta = Json::object();
    meta.set("label", label);
    meta.set("run", run_id);
    meta.set("clock", "simulated accesses (1 tick = 1 traced access)");
    doc.set("otherData", std::move(meta));
    return doc;
}

std::string
buildSeriesJsonl(const TimeSeriesSampler &sampler,
                 const std::string &run_id, const std::string &label)
{
    std::string out;
    Json header = Json::object();
    header.set("run", run_id);
    header.set("label", label);
    header.set("interval", sampler.interval());
    header.set("epochs",
               static_cast<std::uint64_t>(sampler.epochs().size()));
    header.set("dropped", sampler.droppedEpochs());
    out += header.dump();
    out += '\n';
    for (const TimeSeriesSampler::Epoch &e : sampler.epochs()) {
        Json line = Json::object();
        line.set("epoch", e.index);
        line.set("clock", e.clock);
        Json deltas = Json::object();
        for (const auto &[name, value] : e.deltas)
            deltas.set(name, value);
        line.set("deltas", std::move(deltas));
        if (!e.gauges.empty()) {
            Json g = Json::object();
            for (const auto &[name, value] : e.gauges)
                g.set(name, value);
            line.set("gauges", std::move(g));
        }
        out += line.dump();
        out += '\n';
    }
    return out;
}

std::string
writeRunTelemetry(const TelemetryOptions &options,
                  const std::string &label,
                  const std::string &fingerprint,
                  const TraceSink &sink,
                  const TimeSeriesSampler *sampler, Json result,
                  Json stats, Json extra, Json events, Json profile)
{
    const std::string id = runId(fingerprint);
    const std::string base = options.metricsDir + "/";

    Json doc = Json::object();
    doc.set("schema", "gpsm-metrics-v1");
    doc.set("run", id);
    doc.set("label", label);
    doc.set("fingerprint", fingerprint);
    for (auto &[k, v] : extra.entries())
        doc.set(k, v);
    doc.set("result", std::move(result));
    doc.set("stats", std::move(stats));
    if (sampler != nullptr) {
        Json series = Json::object();
        series.set("interval", sampler->interval());
        series.set("epochs", static_cast<std::uint64_t>(
                                 sampler->epochs().size()));
        series.set("dropped", sampler->droppedEpochs());
        series.set("file", "series_" + id + ".jsonl");
        doc.set("series", std::move(series));
    }
    Json tracing = Json::object();
    tracing.set("events", sink.totalEvents());
    tracing.set("dropped", sink.droppedEvents());
    if (sampler != nullptr || sink.totalEvents() > 0)
        tracing.set("file", "trace_" + id + ".json");
    doc.set("trace", std::move(tracing));
    // Only runs a live stream observed get an "events" section, so
    // dormant documents stay byte-identical to earlier builds.
    if (events.isObject())
        doc.set("events", std::move(events));
    // Likewise the host phase breakdown appears only when the profiler
    // was armed for this run.
    if (profile.isObject())
        doc.set("profile", std::move(profile));

    const std::string doc_path = base + "run_" + id + ".json";
    if (!writeFileAtomic(doc_path, doc.dump(2) + "\n")) {
        warn("telemetry: cannot write %s", doc_path.c_str());
        return "";
    }

    if (sampler != nullptr || sink.totalEvents() > 0) {
        const Json trace = buildTraceJson(sink, sampler, label, id);
        writeFileAtomic(base + "trace_" + id + ".json",
                        trace.dump(1) + "\n");
    }
    if (sampler != nullptr) {
        writeFileAtomic(base + "series_" + id + ".jsonl",
                        buildSeriesJsonl(*sampler, id, label));
    }
    return doc_path;
}

ProgressMeter::ProgressMeter(std::size_t total,
                             std::string batch_label)
    : label(std::move(batch_label)), total(total),
      start(std::chrono::steady_clock::now())
{
}

std::size_t
ProgressMeter::done() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return completed;
}

std::size_t
ProgressMeter::failed() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return failedCount;
}

void
ProgressMeter::onResult(double wall_seconds, bool cached)
{
    std::lock_guard<std::mutex> lock(mtx);
    ++completed;
    if (cached)
        ++cachedCount;
    else
        uncachedWall += wall_seconds;
    render();
}

void
ProgressMeter::onError()
{
    std::lock_guard<std::mutex> lock(mtx);
    ++completed;
    ++failedCount;
    render();
}

void
ProgressMeter::grow(std::size_t n)
{
    std::lock_guard<std::mutex> lock(mtx);
    total += n;
}

double
ProgressMeter::etaSeconds() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return etaLocked();
}

double
ProgressMeter::etaLocked() const
{
    const std::size_t remaining =
        total > completed ? total - completed : 0;
    const std::size_t executed = completed - cachedCount - failedCount;
    // ETA from the memo/journal hit rate: cached results are ~free,
    // so remaining cost ≈ remaining * (1 - hit rate) * mean wall of
    // an executed experiment.
    if (completed == 0)
        return -1.0;
    if (executed == 0)
        return 0.0; // everything so far was cached/failed instantly
    const double hit_rate = static_cast<double>(cachedCount) /
                            static_cast<double>(completed);
    const double mean_wall =
        uncachedWall / static_cast<double>(executed);
    return static_cast<double>(remaining) * (1.0 - hit_rate) *
           mean_wall;
}

void
ProgressMeter::setSilent(bool on)
{
    std::lock_guard<std::mutex> lock(mtx);
    silent = on;
}

void
ProgressMeter::render()
{
    // Called with mtx held. stderr only: stdout carries bench tables.
    if (silent)
        return;
    const double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    const double eta = etaLocked();
    char eta_buf[32];
    if (eta >= 0.0)
        std::snprintf(eta_buf, sizeof(eta_buf), "%.1fs", eta);
    else
        std::snprintf(eta_buf, sizeof(eta_buf), "?");
    const std::string prefix = label.empty() ? "" : label + " ";
    std::fprintf(stderr,
                 "  %s[%zu/%zu] cached=%zu failed=%zu "
                 "elapsed=%.1fs eta=%s\n",
                 prefix.c_str(), completed, total, cachedCount,
                 failedCount, elapsed, eta_buf);
    std::fflush(stderr);
}

void
ProgressMeter::finish()
{
    std::lock_guard<std::mutex> lock(mtx);
    if (silent)
        return;
    const double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    const std::string prefix = label.empty() ? "" : label + " ";
    std::fprintf(stderr,
                 "  %sbatch done: %zu configs (%zu cached, %zu "
                 "failed) in %.1fs\n",
                 prefix.c_str(), total, cachedCount, failedCount,
                 elapsed);
    std::fflush(stderr);
}

} // namespace gpsm::obs
