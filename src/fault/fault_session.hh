/**
 * @file
 * FaultSession: interprets one FaultPlan against one SimMachine.
 */

#ifndef GPSM_FAULT_FAULT_SESSION_HH
#define GPSM_FAULT_FAULT_SESSION_HH

#include <cstdint>
#include <vector>

#include "fault/fault_plan.hh"
#include "mem/memhog.hh"
#include "mem/memory_node.hh"
#include "mem/swap_device.hh"
#include "obs/hooks.hh"
#include "tlb/mmu.hh"
#include "util/rng.hh"

namespace gpsm::fault
{

/**
 * Live interpreter for a FaultPlan.
 *
 * The session installs itself into the machine's narrow injection
 * hooks (MemoryNode allocation interceptor, SwapDevice slot
 * interceptor, Mmu swap-cost scaler) on construction and uninstalls on
 * destruction — a machine with no session behaves bit-identically to
 * one built before the fault layer existed.
 *
 * The fault clock is the machine's traced-access counter
 * (Mmu::accesses), read lazily at hook sites: no per-access cost is
 * added anywhere. Start-anchored events are resolved immediately;
 * KernelStart-anchored ones stay dormant until the experiment driver
 * calls enterKernelPhase(). Every applied point event and every veto
 * window crossing is appended to a bounded trace so tests can assert
 * determinism (same plan + same seeds => same trace).
 */
class FaultSession final : public mem::AllocationInterceptor,
                           public mem::SwapInterceptor,
                           public tlb::SwapCostScaler
{
  public:
    /**
     * @param plan The plan to interpret (copied).
     * @param config_seed The experiment seed; mixed into the plan seed
     *        so probabilistic vetoes differ across experiment seeds
     *        but are reproducible for each.
     */
    FaultSession(const FaultPlan &plan, std::uint64_t config_seed,
                 mem::MemoryNode &node, mem::SwapDevice &swap,
                 tlb::Mmu &mmu);
    ~FaultSession() override;

    FaultSession(const FaultSession &) = delete;
    FaultSession &operator=(const FaultSession &) = delete;

    /**
     * Resolve KernelStart anchors against the current clock. Call once,
     * immediately before the kernel runs. Point events anchored there
     * with offset 0 fire right away.
     */
    void enterKernelPhase();

    /** @name Interceptor hooks (called by the machine, not users) @{ */
    void onAllocate() override;
    bool dropHugeAllocation() override;
    bool stallSlotAllocation() override;
    std::uint64_t scaleSwapCycles(std::uint64_t cycles) override;
    /** @} */

    /** One applied point event or veto, for determinism assertions. */
    struct AppliedEvent
    {
        std::uint64_t clock = 0;
        FaultKind kind = FaultKind::HugeAllocFail;
        /** Kind-specific: bytes pinned/released, cycles scaled, ... */
        std::uint64_t detail = 0;
    };

    /** Applied-event trace (capped at traceCapacity entries). */
    const std::vector<AppliedEvent> &trace() const { return applied; }

    /** Total events applied (uncapped, unlike the trace). */
    std::uint64_t eventsApplied() const { return appliedCount; }

    /** Bytes currently pinned by the transient hog. */
    std::uint64_t transientHeldBytes() const
    {
        return transientHog.heldBytes();
    }

    static constexpr std::size_t traceCapacity = 65536;

    /**
     * Install (or, with nullptr, remove) the telemetry trace hook.
     * Every applied point event (FaultEvent) and veto (FaultVeto) is
     * mirrored through it. Observation-only: the hook never alters
     * what the session applies or records.
     */
    void setTraceHook(obs::TraceHook *hook) { traceHook = hook; }

  private:
    /** One plan event bound to resolved clock values. */
    struct Scheduled
    {
        FaultEvent ev;
        std::uint64_t startClock = 0;
        std::uint64_t endClock = ~0ull;
        bool startResolved = false;
        bool endResolved = false;
        bool fired = false; ///< point events only
        /** Remaining correlated-burst vetoes (HugeAllocFail only). */
        std::uint64_t burstLeft = 0;
    };

    std::uint64_t now() const;

    void resolveAnchor(FaultAnchor anchor, std::uint64_t base);
    void firePointEvents();
    void record(FaultKind kind, std::uint64_t detail);

    static bool isWindow(FaultKind kind)
    {
        return kind == FaultKind::HugeAllocFail ||
               kind == FaultKind::SwapLatency ||
               kind == FaultKind::SwapStall;
    }

    /** Is the window of @p s open at clock @p clock? */
    static bool
    windowActive(const Scheduled &s, std::uint64_t clock)
    {
        return s.startResolved && clock >= s.startClock &&
               !(s.endResolved && clock >= s.endClock);
    }

    mem::MemoryNode &node;
    mem::SwapDevice &swap;
    tlb::Mmu &mmu;

    std::vector<Scheduled> schedule;
    Rng rng;

    mem::Memhog transientHog;  ///< MemhogArrive/MemhogDepart target
    mem::Memhog permanentHog;  ///< FramePoolShrink target

    std::vector<AppliedEvent> applied;
    obs::TraceHook *traceHook = nullptr;
    std::uint64_t appliedCount = 0;
    bool anyPending = false; ///< unfired point events remain
};

} // namespace gpsm::fault

#endif // GPSM_FAULT_FAULT_SESSION_HH
