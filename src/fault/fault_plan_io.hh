/**
 * @file
 * FaultPlan JSON input: lets a driver script describe an injection
 * scenario in a file instead of hard-coding it (gpsm_run
 * --fault-plan). The format mirrors the FaultEvent fields one to one,
 * with kinds and anchors spelled exactly as faultKindName /
 * faultAnchorName print them.
 *
 * Example:
 *   {
 *     "seed": 7,
 *     "events": [
 *       {"kind": "memhogArrive", "at": 0,
 *        "bytes": 8388608, "allButBytes": true},
 *       {"kind": "hugeAllocFail", "at": 0,
 *        "endAnchor": "kernel", "endAt": 0, "probability": 0.5},
 *       {"kind": "memhogDepart", "anchor": "kernel", "at": 0}
 *     ]
 *   }
 */

#ifndef GPSM_FAULT_FAULT_PLAN_IO_HH
#define GPSM_FAULT_FAULT_PLAN_IO_HH

#include <string>

#include "fault/fault_plan.hh"
#include "obs/json.hh"

namespace gpsm::fault
{

/**
 * Parse a plan from JSON text. Unknown keys, unknown kind/anchor
 * names and type mismatches are fatal (a silently defaulted typo
 * would corrupt an experiment definition).
 */
FaultPlan parseFaultPlan(const std::string &text);

/** parseFaultPlan over the contents of @p path (fatal if unreadable). */
FaultPlan loadFaultPlan(const std::string &path);

/**
 * Parse a plan from an already-parsed JSON value (same strictness as
 * parseFaultPlan). Used by the gpsm_serve protocol, which embeds the
 * plan inside a request document.
 */
FaultPlan faultPlanFromJson(const obs::Json &doc);

/**
 * Inverse of faultPlanFromJson. Fields at their default value are
 * omitted (notably the ~0 "end of run" endAt, which has no exact
 * double representation), so faultPlanFromJson(faultPlanToJson(p))
 * reproduces p fingerprint-exactly.
 */
obs::Json faultPlanToJson(const FaultPlan &plan);

} // namespace gpsm::fault

#endif // GPSM_FAULT_FAULT_PLAN_IO_HH
