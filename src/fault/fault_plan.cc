/**
 * @file
 * FaultPlan serialization and canned scenarios.
 */

#include "fault/fault_plan.hh"

#include <sstream>

namespace gpsm::fault
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::HugeAllocFail:
        return "hugeAllocFail";
      case FaultKind::SwapLatency:
        return "swapLatency";
      case FaultKind::SwapStall:
        return "swapStall";
      case FaultKind::MemhogArrive:
        return "memhogArrive";
      case FaultKind::MemhogDepart:
        return "memhogDepart";
      case FaultKind::FramePoolShrink:
        return "framePoolShrink";
    }
    return "?";
}

const char *
faultAnchorName(FaultAnchor anchor)
{
    switch (anchor) {
      case FaultAnchor::Start:
        return "start";
      case FaultAnchor::KernelStart:
        return "kernel";
    }
    return "?";
}

std::string
FaultPlan::fingerprint() const
{
    // Exact, lossless encoding: every field of every event, doubles in
    // hexfloat (this string is only ever written, never parsed).
    std::ostringstream os;
    os << "fp1;" << seed;
    os << std::hexfloat;
    for (const FaultEvent &ev : events) {
        os << ';' << faultKindName(ev.kind) << ','
           << faultAnchorName(ev.anchor) << ',' << ev.at << ','
           << faultAnchorName(ev.endAnchor) << ',' << ev.endAt << ','
           << ev.probability << ',' << ev.bytes << ','
           << (ev.allButBytes ? 1 : 0) << ',' << ev.factor << ','
           << ev.burst;
    }
    return os.str();
}

FaultPlan
FaultPlan::transientPressure(std::uint64_t reserve_bytes)
{
    FaultPlan plan;

    FaultEvent hog;
    hog.kind = FaultKind::MemhogArrive;
    hog.anchor = FaultAnchor::Start;
    hog.at = 0;
    hog.bytes = reserve_bytes;
    hog.allButBytes = true;
    plan.events.push_back(hog);

    // While the hog is resident the node has no huge-page-sized holes
    // anyway; the explicit window makes the scenario independent of
    // exactly how the hog carved up the free lists.
    FaultEvent window;
    window.kind = FaultKind::HugeAllocFail;
    window.anchor = FaultAnchor::Start;
    window.at = 0;
    window.endAnchor = FaultAnchor::KernelStart;
    window.endAt = 0;
    plan.events.push_back(window);

    FaultEvent depart;
    depart.kind = FaultKind::MemhogDepart;
    depart.anchor = FaultAnchor::KernelStart;
    depart.at = 0;
    plan.events.push_back(depart);

    return plan;
}

FaultPlan
FaultPlan::correlatedBursts(unsigned windows, std::uint64_t burst_len,
                            std::uint64_t spacing)
{
    FaultPlan plan;
    plan.events.reserve(windows);
    for (unsigned i = 0; i < windows; ++i) {
        FaultEvent ev;
        ev.kind = FaultKind::HugeAllocFail;
        ev.anchor = FaultAnchor::KernelStart;
        ev.at = spacing * i;
        // The burst cap ends the event; leave the window nominally
        // open until the next one starts so bursts never overlap.
        ev.endAnchor = FaultAnchor::KernelStart;
        ev.endAt = spacing * (i + 1);
        ev.burst = burst_len;
        plan.events.push_back(ev);
    }
    return plan;
}

} // namespace gpsm::fault
