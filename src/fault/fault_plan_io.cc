/**
 * @file
 * FaultPlan JSON input implementation.
 */

#include "fault/fault_plan_io.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "obs/json.hh"
#include "util/logging.hh"

namespace gpsm::fault
{

namespace
{

FaultKind
parseKind(const std::string &name)
{
    for (const FaultKind k :
         {FaultKind::HugeAllocFail, FaultKind::SwapLatency,
          FaultKind::SwapStall, FaultKind::MemhogArrive,
          FaultKind::MemhogDepart, FaultKind::FramePoolShrink}) {
        if (name == faultKindName(k))
            return k;
    }
    fatal("fault plan: unknown kind '%s'", name.c_str());
}

FaultAnchor
parseAnchor(const std::string &name)
{
    for (const FaultAnchor a :
         {FaultAnchor::Start, FaultAnchor::KernelStart}) {
        if (name == faultAnchorName(a))
            return a;
    }
    fatal("fault plan: unknown anchor '%s' (start|kernel)",
          name.c_str());
}

std::uint64_t
asCount(const obs::Json &v, const char *key)
{
    if (!v.isNumber() || v.asNumber() < 0 ||
        v.asNumber() != std::floor(v.asNumber()))
        fatal("fault plan: '%s' must be a non-negative integer", key);
    return static_cast<std::uint64_t>(v.asNumber());
}

FaultEvent
parseEvent(const obs::Json &j, std::size_t index)
{
    if (!j.isObject())
        fatal("fault plan: events[%zu] is not an object", index);
    FaultEvent ev;
    bool have_kind = false;
    for (const auto &[key, value] : j.entries()) {
        if (key == "kind") {
            if (!value.isString())
                fatal("fault plan: 'kind' must be a string");
            ev.kind = parseKind(value.asString());
            have_kind = true;
        } else if (key == "anchor") {
            if (!value.isString())
                fatal("fault plan: 'anchor' must be a string");
            ev.anchor = parseAnchor(value.asString());
        } else if (key == "at") {
            ev.at = asCount(value, "at");
        } else if (key == "endAnchor") {
            if (!value.isString())
                fatal("fault plan: 'endAnchor' must be a string");
            ev.endAnchor = parseAnchor(value.asString());
        } else if (key == "endAt") {
            ev.endAt = asCount(value, "endAt");
        } else if (key == "probability") {
            if (!value.isNumber() || value.asNumber() < 0.0 ||
                value.asNumber() > 1.0)
                fatal("fault plan: 'probability' must be in [0,1]");
            ev.probability = value.asNumber();
        } else if (key == "bytes") {
            ev.bytes = asCount(value, "bytes");
        } else if (key == "allButBytes") {
            if (value.kind() != obs::Json::Kind::Bool)
                fatal("fault plan: 'allButBytes' must be a bool");
            ev.allButBytes = value.asBool();
        } else if (key == "factor") {
            if (!value.isNumber() || value.asNumber() < 0.0)
                fatal("fault plan: 'factor' must be non-negative");
            ev.factor = value.asNumber();
        } else if (key == "burst") {
            ev.burst = asCount(value, "burst");
        } else {
            fatal("fault plan: unknown event key '%s'", key.c_str());
        }
    }
    if (!have_kind)
        fatal("fault plan: events[%zu] has no 'kind'", index);
    return ev;
}

} // anonymous namespace

FaultPlan
faultPlanFromJson(const obs::Json &doc)
{
    if (!doc.isObject())
        fatal("fault plan: top level must be an object");

    FaultPlan plan;
    for (const auto &[key, value] : doc.entries()) {
        if (key == "seed") {
            plan.seed = asCount(value, "seed");
        } else if (key == "events") {
            if (!value.isArray())
                fatal("fault plan: 'events' must be an array");
            for (std::size_t i = 0; i < value.elements().size(); ++i)
                plan.events.push_back(
                    parseEvent(value.elements()[i], i));
        } else {
            fatal("fault plan: unknown key '%s'", key.c_str());
        }
    }
    return plan;
}

obs::Json
faultPlanToJson(const FaultPlan &plan)
{
    const FaultEvent defaults;
    obs::Json doc = obs::Json::object();
    if (plan.seed != FaultPlan().seed)
        doc.set("seed", obs::Json(plan.seed));
    obs::Json events = obs::Json::array();
    for (const FaultEvent &ev : plan.events) {
        obs::Json e = obs::Json::object();
        e.set("kind", obs::Json(faultKindName(ev.kind)));
        if (ev.anchor != defaults.anchor)
            e.set("anchor", obs::Json(faultAnchorName(ev.anchor)));
        if (ev.at != defaults.at)
            e.set("at", obs::Json(ev.at));
        if (ev.endAnchor != defaults.endAnchor)
            e.set("endAnchor", obs::Json(faultAnchorName(ev.endAnchor)));
        if (ev.endAt != defaults.endAt)
            e.set("endAt", obs::Json(ev.endAt));
        if (ev.probability != defaults.probability)
            e.set("probability", obs::Json(ev.probability));
        if (ev.burst != defaults.burst)
            e.set("burst", obs::Json(ev.burst));
        if (ev.bytes != defaults.bytes)
            e.set("bytes", obs::Json(ev.bytes));
        if (ev.allButBytes != defaults.allButBytes)
            e.set("allButBytes", obs::Json(ev.allButBytes));
        if (ev.factor != defaults.factor)
            e.set("factor", obs::Json(ev.factor));
        events.push(std::move(e));
    }
    doc.set("events", std::move(events));
    return doc;
}

FaultPlan
parseFaultPlan(const std::string &text)
{
    std::size_t err_off = 0;
    const std::optional<obs::Json> doc = obs::parseJson(text, &err_off);
    if (!doc)
        fatal("fault plan: JSON syntax error at byte %zu", err_off);
    return faultPlanFromJson(*doc);
}

FaultPlan
loadFaultPlan(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("fault plan: cannot read '%s'", path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseFaultPlan(buf.str());
}

} // namespace gpsm::fault
