/**
 * @file
 * Declarative, config-seeded fault plans.
 *
 * A FaultPlan is *data*: an ordered list of events scheduled on the
 * simulated access clock (Mmu::accesses), describing transient
 * adversities the memory system must degrade gracefully under —
 * huge-allocation failure windows, swap-device latency spikes and
 * stalls, a memhog arriving and departing mid-run, the frame pool
 * shrinking. The plan is part of ExperimentConfig (and of its
 * fingerprint), so a faulty run is exactly as reproducible and
 * memoizable as a clean one. FaultSession interprets the plan against
 * one SimMachine via the narrow interceptor hooks in mem/ and tlb/.
 */

#ifndef GPSM_FAULT_FAULT_PLAN_HH
#define GPSM_FAULT_FAULT_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

namespace gpsm::fault
{

/** What a FaultEvent does when it fires (or while its window is open). */
enum class FaultKind : std::uint8_t
{
    /** Window: huge-order allocations fail (vetoed at the node). */
    HugeAllocFail,
    /** Window: swap-in/swap-out cycle costs are multiplied by
     *  FaultEvent::factor (device transiently slower). */
    SwapLatency,
    /** Window: swap slot allocations are refused outright (device
     *  unresponsive; swap-outs fail as if the device were full). */
    SwapStall,
    /** Point event: a transient memhog pins FaultEvent::bytes (or all
     *  but `bytes` when allButBytes is set). */
    MemhogArrive,
    /** Point event: the transient memhog releases everything. */
    MemhogDepart,
    /** Point event: permanently pin FaultEvent::bytes, shrinking the
     *  frame pool for the rest of the run (ballooning / hotunplug). */
    FramePoolShrink,
};

const char *faultKindName(FaultKind kind);

/**
 * Where an event's trigger time is measured from. Start anchors are
 * resolved when the FaultSession is installed; KernelStart anchors
 * resolve when the driver calls FaultSession::enterKernelPhase() (just
 * before the kernel runs), so "pressure arrives during BFS" does not
 * depend on how many accesses graph loading happened to take.
 */
enum class FaultAnchor : std::uint8_t
{
    Start,
    KernelStart,
};

const char *faultAnchorName(FaultAnchor anchor);

/**
 * One scheduled fault. Point kinds (Memhog*, FramePoolShrink) fire once
 * when the clock passes `anchor + at`. Window kinds (HugeAllocFail,
 * Swap*) are active while the clock is inside
 * [anchor + at, endAnchor + endAt); the default end (~0 offset) keeps
 * the window open for the rest of the run.
 */
struct FaultEvent
{
    FaultKind kind = FaultKind::HugeAllocFail;

    FaultAnchor anchor = FaultAnchor::Start;
    std::uint64_t at = 0; ///< accesses after `anchor`

    FaultAnchor endAnchor = FaultAnchor::Start;
    std::uint64_t endAt = ~0ull; ///< window end offset (windows only)

    /**
     * For HugeAllocFail windows: per-request veto probability. 1.0
     * (default) vetoes deterministically; fractions draw from the
     * session RNG, which is seeded from the plan seed and the
     * experiment seed, so the flakiness itself is reproducible.
     */
    double probability = 1.0;

    /**
     * For HugeAllocFail windows: correlated burst length. 0 (default)
     * vetoes every request inside the window; N > 0 vetoes exactly
     * the first N huge-allocation requests that arrive while the
     * window is open — back to back, deterministically — and then the
     * window is spent. Models the bursty failure signature of a
     * fragmented buddy list or a transient reclaim stall, where
     * failures cluster instead of raining uniformly.
     */
    std::uint64_t burst = 0;

    /** Memhog / pool-shrink size. */
    std::uint64_t bytes = 0;
    /** Interpret `bytes` as "occupy all but this many" instead. */
    bool allButBytes = false;

    /** SwapLatency multiplier. */
    double factor = 1.0;
};

/**
 * The full plan: events plus the seed for any probabilistic draws.
 * Event order is significant only for same-clock point events (applied
 * in declaration order).
 */
struct FaultPlan
{
    std::vector<FaultEvent> events;
    std::uint64_t seed = 1;

    bool empty() const { return events.empty(); }

    /**
     * Exact serialization of the plan, suitable for embedding in
     * ExperimentConfig::fingerprint(): two plans with the same
     * fingerprint inject identical faults.
     */
    std::string fingerprint() const;

    /**
     * The canonical transient-pressure recovery scenario (paper §6's
     * ablation, part 2): a hog pins all but @p reserve_bytes before
     * first touch and huge allocations fail while it is resident, so
     * the graph loads entirely onto base pages; at kernel start the
     * hog departs and the failure window closes, leaving recovery to
     * the promotion policy under test.
     */
    static FaultPlan transientPressure(std::uint64_t reserve_bytes);

    /**
     * Correlated-burst veto scenario (serve chaos suite): @p windows
     * kernel-anchored HugeAllocFail windows, spaced @p spacing
     * accesses apart, each vetoing exactly @p burst_len back-to-back
     * huge-allocation requests. Between bursts huge allocation works
     * normally, so a run under this plan exercises repeated
     * degrade-and-recover cycles rather than one long outage.
     */
    static FaultPlan correlatedBursts(unsigned windows,
                                      std::uint64_t burst_len,
                                      std::uint64_t spacing);
};

} // namespace gpsm::fault

#endif // GPSM_FAULT_FAULT_PLAN_HH
