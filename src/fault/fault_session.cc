/**
 * @file
 * FaultSession implementation.
 */

#include "fault/fault_session.hh"

#include "util/logging.hh"

namespace gpsm::fault
{

namespace
{

/** splitmix64-style mix of the plan seed and the experiment seed. */
std::uint64_t
mixSeeds(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t z = a + 0x9e3779b97f4a7c15ull * (b + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

FaultSession::FaultSession(const FaultPlan &plan,
                           std::uint64_t config_seed,
                           mem::MemoryNode &target_node,
                           mem::SwapDevice &target_swap,
                           tlb::Mmu &target_mmu)
    : node(target_node), swap(target_swap), mmu(target_mmu),
      rng(mixSeeds(plan.seed, config_seed)), transientHog(target_node),
      permanentHog(target_node)
{
    schedule.reserve(plan.events.size());
    for (const FaultEvent &ev : plan.events) {
        Scheduled s;
        s.ev = ev;
        s.burstLeft = ev.burst;
        schedule.push_back(s);
    }
    resolveAnchor(FaultAnchor::Start, now());

    node.setInterceptor(this);
    swap.setInterceptor(this);
    mmu.setSwapCostScaler(this);

    // Start-anchored, offset-0 point events (e.g. a hog resident from
    // the beginning) fire before the first allocation.
    firePointEvents();
}

FaultSession::~FaultSession()
{
    node.setInterceptor(nullptr);
    swap.setInterceptor(nullptr);
    mmu.setSwapCostScaler(nullptr);
    // The hogs release their frames in their own destructors.
}

std::uint64_t
FaultSession::now() const
{
    return mmu.accesses.value();
}

void
FaultSession::resolveAnchor(FaultAnchor anchor, std::uint64_t base)
{
    anyPending = false;
    for (Scheduled &s : schedule) {
        if (s.ev.anchor == anchor && !s.startResolved) {
            s.startResolved = true;
            // Saturate instead of wrapping for "end of run" offsets.
            s.startClock = base + s.ev.at < base ? ~0ull : base + s.ev.at;
        }
        if (isWindow(s.ev.kind) && s.ev.endAnchor == anchor &&
            !s.endResolved) {
            s.endResolved = true;
            s.endClock =
                base + s.ev.endAt < base ? ~0ull : base + s.ev.endAt;
        }
        if (!isWindow(s.ev.kind) && !s.fired)
            anyPending = true;
    }
}

void
FaultSession::enterKernelPhase()
{
    resolveAnchor(FaultAnchor::KernelStart, now());
    firePointEvents();
}

void
FaultSession::record(FaultKind kind, std::uint64_t detail)
{
    ++appliedCount;
    if (applied.size() < traceCapacity)
        applied.push_back({now(), kind, detail});
    if (traceHook != nullptr) {
        traceHook->traceEvent(isWindow(kind) ? obs::TraceKind::FaultVeto
                                             : obs::TraceKind::FaultEvent,
                              detail, faultKindName(kind));
    }
}

void
FaultSession::firePointEvents()
{
    if (!anyPending)
        return;
    const std::uint64_t clock = now();
    bool pending = false;
    for (Scheduled &s : schedule) {
        if (isWindow(s.ev.kind) || s.fired)
            continue;
        if (!s.startResolved || clock < s.startClock) {
            pending = true;
            continue;
        }
        s.fired = true;
        switch (s.ev.kind) {
          case FaultKind::MemhogArrive: {
            const std::uint64_t got =
                s.ev.allButBytes
                    ? transientHog.occupyAllBut(s.ev.bytes)
                    : transientHog.occupy(s.ev.bytes);
            record(s.ev.kind, got);
            break;
          }
          case FaultKind::MemhogDepart: {
            const std::uint64_t held = transientHog.heldBytes();
            transientHog.release();
            record(s.ev.kind, held);
            break;
          }
          case FaultKind::FramePoolShrink: {
            const std::uint64_t got =
                s.ev.allButBytes
                    ? permanentHog.occupyAllBut(s.ev.bytes)
                    : permanentHog.occupy(s.ev.bytes);
            record(s.ev.kind, got);
            break;
          }
          default:
            panic("window fault kind in point-event dispatch");
        }
    }
    anyPending = pending;
}

void
FaultSession::onAllocate()
{
    firePointEvents();
}

bool
FaultSession::dropHugeAllocation()
{
    const std::uint64_t clock = now();
    for (Scheduled &s : schedule) {
        if (s.ev.kind != FaultKind::HugeAllocFail ||
            !windowActive(s, clock)) {
            continue;
        }
        if (s.ev.burst > 0) {
            // Correlated burst: the first `burst` requests inside the
            // window are vetoed back to back (deterministically,
            // regardless of `probability`); after that the window is
            // spent and allocation recovers.
            if (s.burstLeft == 0)
                continue;
            --s.burstLeft;
            record(s.ev.kind, 1);
            return true;
        }
        if (s.ev.probability >= 1.0 || rng.chance(s.ev.probability)) {
            record(s.ev.kind, 1);
            return true;
        }
    }
    return false;
}

bool
FaultSession::stallSlotAllocation()
{
    const std::uint64_t clock = now();
    for (Scheduled &s : schedule) {
        if (s.ev.kind == FaultKind::SwapStall && windowActive(s, clock)) {
            record(s.ev.kind, 1);
            return true;
        }
    }
    return false;
}

std::uint64_t
FaultSession::scaleSwapCycles(std::uint64_t cycles)
{
    const std::uint64_t clock = now();
    double factor = 1.0;
    for (const Scheduled &s : schedule) {
        if (s.ev.kind == FaultKind::SwapLatency &&
            windowActive(s, clock)) {
            factor *= s.ev.factor;
        }
    }
    if (factor == 1.0)
        return cycles;
    const double scaled = static_cast<double>(cycles) * factor;
    return static_cast<std::uint64_t>(scaled);
}

} // namespace gpsm::fault
