/**
 * @file
 * Per-address-space page table with mixed page sizes.
 *
 * Linux keeps a radix tree whose leaf level is fixed by hardware; huge
 * pages are leaves one level up. We model the same *translation
 * contract* — at most one mapping covers any virtual page, and a huge
 * mapping occupies exactly one entry — with per-size-class hash maps,
 * because our scaled system configuration allows huge-page ratios
 * (e.g. 64 base pages) that do not land on an x86 level boundary. Walk
 * latency is charged by the TLB cost model, parameterized by the
 * resolved page size, so the structural substitution does not affect
 * any measured quantity.
 */

#ifndef GPSM_VM_PAGE_TABLE_HH
#define GPSM_VM_PAGE_TABLE_HH

#include <cstdint>
#include <unordered_map>

#include "mem/types.hh"
#include "util/units.hh"

namespace gpsm::vm
{

/** Resolved translation size class. */
enum class PageSizeClass : std::uint8_t
{
    Base = 0,
    Huge = 1,
    /** 1GB-class pages (hugetlbfs-style explicit reservation). */
    Giant = 2,
};

constexpr unsigned numPageSizeClasses = 3;

/** Page table entry. Either present (frame valid) or swapped out. */
struct Pte
{
    mem::FrameNum frame = mem::invalidFrame;
    bool present = false;
    bool swapped = false;
    std::uint64_t swapSlot = 0;
};

/**
 * Mixed-granularity page table keyed by virtual page number (VPN, in
 * base-page units). Huge entries are keyed by their aligned VPN.
 */
class PageTable
{
  public:
    /**
     * @param huge_order log2(huge page / base page).
     * @param giant_order log2(giant page / base page); 0 disables the
     *        giant level.
     */
    explicit PageTable(unsigned huge_order, unsigned giant_order = 0)
        : hugeOrd(huge_order), giantOrd(giant_order)
    {
    }

    /** Translation result for lookups. */
    struct Translation
    {
        bool valid = false;
        PageSizeClass size = PageSizeClass::Base;
        Pte pte;
    };

    /**
     * Look up the mapping covering base-page @p vpn, checking the huge
     * level first as a hardware walker would.
     */
    Translation lookup(std::uint64_t vpn) const;

    /** Present/ swapped entry exists covering @p vpn? */
    bool covered(std::uint64_t vpn) const;

    /** Map base page @p vpn to @p frame. Panics on double map. */
    void mapBase(std::uint64_t vpn, mem::FrameNum frame);

    /**
     * Map the huge region containing @p vpn to @p frame (head frame of
     * a huge block). @p vpn is rounded down. Panics if any base entry
     * exists inside the region or the region is already mapped.
     */
    void mapHuge(std::uint64_t vpn, mem::FrameNum frame);

    /** Mark base page @p vpn swapped out to @p slot. */
    void markSwapped(std::uint64_t vpn, std::uint64_t slot);

    /** Restore swapped base page @p vpn with a fresh frame. */
    void restoreSwapped(std::uint64_t vpn, mem::FrameNum frame);

    /** Remove the base entry at @p vpn (panics if absent). */
    void unmapBase(std::uint64_t vpn);

    /** Remove the huge entry covering @p vpn (panics if absent). */
    void unmapHuge(std::uint64_t vpn);

    /**
     * Map the giant region containing @p vpn to @p frame (head frame
     * of a reserved giant block). Panics on conflicts with existing
     * base/huge entries in the region.
     */
    void mapGiant(std::uint64_t vpn, mem::FrameNum frame);

    /** Remove the giant entry covering @p vpn (panics if absent). */
    void unmapGiant(std::uint64_t vpn);

    /**
     * Demote the huge mapping covering @p vpn: replace one huge entry
     * with per-base-page entries onto consecutive frames of the old
     * huge block. (The physical block stays allocated as one unit; see
     * AddressSpace::demote for the full flow.)
     */
    void demoteToBase(std::uint64_t vpn);

    /** Retarget the base entry at @p vpn to a new frame (migration). */
    void retargetBase(std::uint64_t vpn, mem::FrameNum frame);

    std::uint64_t basePagesMapped() const { return base.size(); }
    std::uint64_t hugePagesMapped() const { return huge.size(); }
    std::uint64_t giantPagesMapped() const { return giant.size(); }
    unsigned hugeOrder() const { return hugeOrd; }
    unsigned giantOrder() const { return giantOrd; }

    std::uint64_t
    hugeVpnOf(std::uint64_t vpn) const
    {
        return vpn & ~((1ull << hugeOrd) - 1);
    }

    std::uint64_t
    giantVpnOf(std::uint64_t vpn) const
    {
        return giantOrd ? (vpn & ~((1ull << giantOrd) - 1)) : vpn;
    }

    /** Iterate present base entries (for eviction victim scans). */
    template <typename Fn>
    void
    forEachBase(Fn &&fn) const
    {
        for (const auto &[vpn, pte] : base)
            fn(vpn, pte);
    }

    template <typename Fn>
    void
    forEachHuge(Fn &&fn) const
    {
        for (const auto &[vpn, pte] : huge)
            fn(vpn, pte);
    }

  private:
    unsigned hugeOrd;
    unsigned giantOrd;
    std::unordered_map<std::uint64_t, Pte> base;
    std::unordered_map<std::uint64_t, Pte> huge;
    std::unordered_map<std::uint64_t, Pte> giant;
};

} // namespace gpsm::vm

#endif // GPSM_VM_PAGE_TABLE_HH
