/**
 * @file
 * Per-address-space page table with mixed page sizes.
 *
 * Linux keeps a radix tree whose leaf level is fixed by hardware; huge
 * pages are leaves one level up. We model the same *translation
 * contract* — at most one mapping covers any virtual page, and a huge
 * mapping occupies exactly one entry — with a flat two-level store:
 * the VPN space is split into fixed-size chunks, each holding a
 * contiguous PTE arena for base pages (allocated on first use) plus
 * one slot and an occupancy count per huge region. A walk is then
 * index arithmetic into at most three arrays instead of three hash
 * probes. Giant (1GB-class) entries live in one flat arena of their
 * own. Walk latency is still charged by the TLB cost model,
 * parameterized by the resolved page size, so the structural
 * substitution does not affect any measured quantity.
 */

#ifndef GPSM_VM_PAGE_TABLE_HH
#define GPSM_VM_PAGE_TABLE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/types.hh"
#include "util/units.hh"

namespace gpsm::vm
{

/** Resolved translation size class. */
enum class PageSizeClass : std::uint8_t
{
    Base = 0,
    Huge = 1,
    /** 1GB-class pages (hugetlbfs-style explicit reservation). */
    Giant = 2,
};

constexpr unsigned numPageSizeClasses = 3;

/** Page table entry. Either present (frame valid) or swapped out. */
struct Pte
{
    mem::FrameNum frame = mem::invalidFrame;
    bool present = false;
    bool swapped = false;
    std::uint64_t swapSlot = 0;
};

/**
 * Mixed-granularity page table keyed by virtual page number (VPN, in
 * base-page units). Huge entries are keyed by their aligned VPN.
 *
 * A slot is *occupied* when its entry is present or swapped; empty
 * slots hold the default Pte, which keeps "mapping exists" exactly
 * equivalent to the old hash-map membership test.
 */
class PageTable
{
  public:
    /**
     * @param huge_order log2(huge page / base page).
     * @param giant_order log2(giant page / base page); 0 disables the
     *        giant level.
     */
    explicit PageTable(unsigned huge_order, unsigned giant_order = 0)
        : hugeOrd(huge_order), giantOrd(giant_order),
          chunkBits(huge_order + regionsPerChunkLog2)
    {
    }

    /** Translation result for lookups. */
    struct Translation
    {
        bool valid = false;
        PageSizeClass size = PageSizeClass::Base;
        Pte pte;
    };

    /**
     * Look up the mapping covering base-page @p vpn, checking the huge
     * level first as a hardware walker would.
     */
    Translation
    lookup(std::uint64_t vpn) const
    {
        Translation t;
        if (giantOrd != 0) {
            const std::uint64_t gi = vpn >> giantOrd;
            if (gi < giants.size() && occupied(giants[gi])) {
                t.valid = true;
                t.size = PageSizeClass::Giant;
                t.pte = giants[gi];
                return t;
            }
        }
        const Chunk *c = chunkAt(vpn);
        if (c == nullptr)
            return t;
        const Pte &h = c->huge[regionIndex(vpn)];
        if (occupied(h)) {
            t.valid = true;
            t.size = PageSizeClass::Huge;
            t.pte = h;
            return t;
        }
        if (!c->base.empty()) {
            const Pte &b = c->base[baseIndex(vpn)];
            if (occupied(b)) {
                t.valid = true;
                t.size = PageSizeClass::Base;
                t.pte = b;
            }
        }
        return t;
    }

    /** Present/ swapped entry exists covering @p vpn? */
    bool covered(std::uint64_t vpn) const;

    /**
     * No mapping of any size intersects the huge region containing
     * @p vpn? O(1): one giant probe, one huge slot, one region count.
     */
    bool regionEmpty(std::uint64_t vpn) const;

    /** Map base page @p vpn to @p frame. Panics on double map. */
    void mapBase(std::uint64_t vpn, mem::FrameNum frame);

    /**
     * Map the huge region containing @p vpn to @p frame (head frame of
     * a huge block). @p vpn is rounded down. Panics if any base entry
     * exists inside the region or the region is already mapped.
     */
    void mapHuge(std::uint64_t vpn, mem::FrameNum frame);

    /** Mark base page @p vpn swapped out to @p slot. */
    void markSwapped(std::uint64_t vpn, std::uint64_t slot);

    /** Restore swapped base page @p vpn with a fresh frame. */
    void restoreSwapped(std::uint64_t vpn, mem::FrameNum frame);

    /** Remove the base entry at @p vpn (panics if absent). */
    void unmapBase(std::uint64_t vpn);

    /** Remove the huge entry covering @p vpn (panics if absent). */
    void unmapHuge(std::uint64_t vpn);

    /**
     * Map the giant region containing @p vpn to @p frame (head frame
     * of a reserved giant block). Panics on conflicts with existing
     * base/huge entries in the region.
     */
    void mapGiant(std::uint64_t vpn, mem::FrameNum frame);

    /** Remove the giant entry covering @p vpn (panics if absent). */
    void unmapGiant(std::uint64_t vpn);

    /**
     * Demote the huge mapping covering @p vpn: replace one huge entry
     * with per-base-page entries onto consecutive frames of the old
     * huge block. (The physical block stays allocated as one unit; see
     * AddressSpace::demote for the full flow.)
     */
    void demoteToBase(std::uint64_t vpn);

    /** Retarget the base entry at @p vpn to a new frame (migration). */
    void retargetBase(std::uint64_t vpn, mem::FrameNum frame);

    std::uint64_t basePagesMapped() const { return nBase; }
    std::uint64_t hugePagesMapped() const { return nHuge; }
    std::uint64_t giantPagesMapped() const { return nGiant; }
    unsigned hugeOrder() const { return hugeOrd; }
    unsigned giantOrder() const { return giantOrd; }

    std::uint64_t
    hugeVpnOf(std::uint64_t vpn) const
    {
        return vpn & ~((1ull << hugeOrd) - 1);
    }

    std::uint64_t
    giantVpnOf(std::uint64_t vpn) const
    {
        return giantOrd ? (vpn & ~((1ull << giantOrd) - 1)) : vpn;
    }

    /** Iterate occupied base entries in VPN order. */
    template <typename Fn>
    void
    forEachBase(Fn &&fn) const
    {
        for (std::size_t ci = 0; ci < chunks.size(); ++ci) {
            const Chunk *c = chunks[ci].get();
            if (c == nullptr || c->base.empty())
                continue;
            const std::uint64_t origin = static_cast<std::uint64_t>(ci)
                                         << chunkBits;
            for (std::size_t i = 0; i < c->base.size(); ++i)
                if (occupied(c->base[i]))
                    fn(origin + i, c->base[i]);
        }
    }

    /** Iterate occupied huge entries in VPN order. */
    template <typename Fn>
    void
    forEachHuge(Fn &&fn) const
    {
        for (std::size_t ci = 0; ci < chunks.size(); ++ci) {
            const Chunk *c = chunks[ci].get();
            if (c == nullptr)
                continue;
            const std::uint64_t origin = static_cast<std::uint64_t>(ci)
                                         << chunkBits;
            for (std::size_t r = 0; r < c->huge.size(); ++r)
                if (occupied(c->huge[r]))
                    fn(origin + (static_cast<std::uint64_t>(r)
                                 << hugeOrd),
                       c->huge[r]);
        }
    }

  private:
    /** Huge regions per chunk (16: keeps lazy base arenas small). */
    static constexpr unsigned regionsPerChunkLog2 = 4;
    static constexpr unsigned regionsPerChunk = 1u
                                                << regionsPerChunkLog2;

    /**
     * One contiguous slab of the VPN space: a lazily allocated base
     * PTE arena plus one huge slot and a base-occupancy count per
     * region (the span tag deciding which level resolves a walk).
     */
    struct Chunk
    {
        std::vector<Pte> base; ///< empty until first base map
        std::vector<Pte> huge = std::vector<Pte>(regionsPerChunk);
        std::vector<std::uint32_t> regionBaseCount =
            std::vector<std::uint32_t>(regionsPerChunk, 0);
    };

    static bool
    occupied(const Pte &pte)
    {
        return pte.present || pte.swapped;
    }

    std::uint64_t
    baseIndex(std::uint64_t vpn) const
    {
        return vpn & ((1ull << chunkBits) - 1);
    }

    unsigned
    regionIndex(std::uint64_t vpn) const
    {
        return static_cast<unsigned>((vpn >> hugeOrd) &
                                     (regionsPerChunk - 1));
    }

    const Chunk *
    chunkAt(std::uint64_t vpn) const
    {
        const std::uint64_t ci = vpn >> chunkBits;
        return ci < chunks.size() ? chunks[ci].get() : nullptr;
    }

    /** Grow the directory as needed and materialize the chunk. */
    Chunk &ensureChunk(std::uint64_t vpn);

    /** Chunk with a materialized base arena. */
    Chunk &ensureBaseArena(std::uint64_t vpn);

    /** Occupied base slot, or nullptr. */
    Pte *findBase(std::uint64_t vpn);

    unsigned hugeOrd;
    unsigned giantOrd;
    unsigned chunkBits;
    std::vector<std::unique_ptr<Chunk>> chunks;
    std::vector<Pte> giants; ///< indexed by vpn >> giantOrd
    std::uint64_t nBase = 0;
    std::uint64_t nHuge = 0;
    std::uint64_t nGiant = 0;
};

} // namespace gpsm::vm

#endif // GPSM_VM_PAGE_TABLE_HH
