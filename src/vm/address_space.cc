/**
 * @file
 * AddressSpace implementation.
 */

#include "vm/address_space.hh"

#include <algorithm>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace gpsm::vm
{

const char *
thpModeName(ThpMode mode)
{
    switch (mode) {
      case ThpMode::Never: return "never";
      case ThpMode::Madvise: return "madvise";
      case ThpMode::Always: return "always";
    }
    return "?";
}

AddressSpace::AddressSpace(mem::MemoryNode &mem_node,
                           mem::SwapDevice &swap_dev,
                           const ThpConfig &thp_config)
    : AddressSpace(mem_node, swap_dev, thp_config, NumaPolicy{})
{
}

AddressSpace::AddressSpace(mem::MemoryNode &mem_node,
                           mem::SwapDevice &swap_dev,
                           const ThpConfig &thp_config,
                           const NumaPolicy &numa)
    : node(mem_node), swap(swap_dev), thp(thp_config),
      pageBytes(node.basePageBytes()), hugeOrd(node.hugeOrder()),
      pt(node.hugeOrder(), node.giantOrder()),
      nextMmapBase(node.hugePageBytes() * 16)
{
    clientId = node.registerClient(this);
    remote = numa.remoteNode;
    placement = numa.placement;
    migrateOnPromote = numa.migrateOnPromote;
    if (remote != nullptr) {
        if (remote->basePageBytes() != node.basePageBytes() ||
            remote->hugeOrder() != node.hugeOrder())
            fatal("remote node page geometry differs from node 0");
        if (remote->frameBase() != mem::remoteNodeFrameBase)
            fatal("remote node must be built with remoteNodeFrameBase");
        remoteClientId = remote->registerClient(this);
    } else if (placement != mem::NumaPlacement::FirstTouch ||
               migrateOnPromote) {
        fatal("NUMA placement policy '%s' requires a remote node",
              mem::numaPlacementName(placement));
    }
}

AddressSpace::~AddressSpace()
{
    // Free every frame still mapped so node-level tests can assert
    // full reclamation.
    while (!regions.empty())
        munmap(regions.begin()->first);
}

Addr
AddressSpace::mmap(std::uint64_t length, const std::string &name)
{
    if (length == 0)
        fatal("mmap of zero length ('%s')", name.c_str());
    const std::uint64_t huge = hugePageBytes();
    length = alignUp(length, pageBytes);

    Vma vma;
    vma.start = nextMmapBase;
    vma.end = vma.start + length;
    vma.name = name;
    // Guard gap keeps adjacent VMAs out of each other's huge regions.
    nextMmapBase = alignUp(vma.end, huge) + huge;

    Addr start = vma.start;
    regions.emplace(start, std::move(vma));
    return start;
}

Addr
AddressSpace::mmapFile(std::uint64_t length, const std::string &name,
                       mem::AddressSpaceCache &cache, mem::FileId file)
{
    const Addr start = mmap(length, name);
    Vma *vma = findVmaMutable(start);
    vma->fileCache = &cache;
    vma->fileId = file;
    fileLo = std::min(fileLo, vma->start);
    fileHi = std::max(fileHi, vma->end);
    return start;
}

Addr
AddressSpace::mmapGiant(std::uint64_t length, const std::string &name)
{
    const std::uint64_t giant = node.giantPageBytes();
    if (node.giantOrder() == 0)
        fatal("mmapGiant('%s'): node has no giant-page support",
              name.c_str());
    length = alignUp(length, giant);
    // Giant VMAs must be giant-aligned; bump the allocator cursor.
    nextMmapBase = alignUp(nextMmapBase, giant);
    const Addr start = mmap(length, name);
    GPSM_ASSERT(isAligned(start, giant));
    Vma *vma = findVmaMutable(start);

    for (Addr a = start; a < start + length; a += giant) {
        mem::FrameNum head = node.allocGiantPage();
        if (head == mem::invalidFrame)
            fatal("giant-page pool exhausted mapping '%s' (%llu of "
                  "%llu pages free)",
                  name.c_str(),
                  static_cast<unsigned long long>(
                      node.giantPagesFree()),
                  static_cast<unsigned long long>(
                      node.giantPagesTotal()));
        pt.mapGiant(vpnOf(a), head);
        ++vma->giantPages;
    }
    return start;
}

void
AddressSpace::munmap(Addr start)
{
    auto it = regions.find(start);
    if (it == regions.end())
        fatal("munmap of unknown region 0x%llx",
              static_cast<unsigned long long>(start));
    Vma &vma = it->second;

    // File-backed VMAs: the cache owns the frames. Destroy the file
    // (discarding dirty contents, munmap without msync, and releasing
    // the FileObject slot for reuse — each SimArray creates its own
    // file, so long-lived services must not accumulate dead ones);
    // every PTE is cleared through unmapFilePage on the way, so the
    // sweep below finds nothing left to free. The flushAll pushed at
    // the end covers the TLB, so per-page invalidations are
    // suppressed.
    const bool wasFileBacked = vma.fileCache != nullptr;
    if (wasFileBacked)
        vma.fileCache->destroyFile(vma.fileId, /*invalidateTlb=*/false);

    const std::uint64_t span = 1ull << hugeOrd;
    std::uint64_t v = vpnOf(vma.start);
    const std::uint64_t vend = vpnOf(vma.end - 1) + 1;
    while (v < vend) {
        PageTable::Translation t = pt.lookup(v);
        if (!t.valid) {
            ++v;
            continue;
        }
        if (t.size == PageSizeClass::Giant) {
            node.freeGiantPage(t.pte.frame);
            pt.unmapGiant(v);
            v = pt.giantVpnOf(v) + (1ull << node.giantOrder());
        } else if (t.size == PageSizeClass::Huge) {
            nodeOf(t.pte.frame).free(t.pte.frame);
            pt.unmapHuge(v);
            v = pt.hugeVpnOf(v) + span;
        } else if (t.pte.present) {
            rmap.erase(t.pte.frame);
            nodeOf(t.pte.frame).free(t.pte.frame);
            pt.unmapBase(v);
            ++v;
        } else {
            GPSM_ASSERT(t.pte.swapped);
            swap.freeSlot(t.pte.swapSlot);
            pt.unmapBase(v);
            ++v;
        }
    }
    pendingInvalidations.push_back(TlbInvalidation{true, 0,
                                                   PageSizeClass::Base});
    regions.erase(it);
    // Shrink the file hull so present-path touches in the dead range
    // stop paying the VMA lookup (and a machine whose last file
    // mapping is gone returns to the one always-false compare).
    if (wasFileBacked)
        recomputeFileHull();
}

void
AddressSpace::recomputeFileHull()
{
    fileLo = ~0ull;
    fileHi = 0;
    for (const auto &[start, vma] : regions) {
        (void)start;
        if (vma.fileCache == nullptr)
            continue;
        fileLo = std::min(fileLo, vma.start);
        fileHi = std::max(fileHi, vma.end);
    }
}

void
AddressSpace::addInterval(std::vector<std::pair<Addr, Addr>> &set, Addr a,
                          Addr b)
{
    GPSM_ASSERT(a < b);
    set.emplace_back(a, b);
    std::sort(set.begin(), set.end());
    // Merge overlapping / adjacent intervals.
    std::vector<std::pair<Addr, Addr>> merged;
    for (const auto &iv : set) {
        if (!merged.empty() && iv.first <= merged.back().second)
            merged.back().second = std::max(merged.back().second,
                                            iv.second);
        else
            merged.push_back(iv);
    }
    set = std::move(merged);
}

bool
AddressSpace::coveredBy(const std::vector<std::pair<Addr, Addr>> &set,
                        Addr a, Addr b)
{
    for (const auto &[lo, hi] : set)
        if (a >= lo && b <= hi)
            return true;
    return false;
}

bool
AddressSpace::intersects(const std::vector<std::pair<Addr, Addr>> &set,
                         Addr a, Addr b)
{
    for (const auto &[lo, hi] : set)
        if (a < hi && lo < b)
            return true;
    return false;
}

void
AddressSpace::madviseHuge(Addr start, std::uint64_t length)
{
    Vma *vma = findVmaMutable(start);
    if (vma == nullptr || start + length > vma->end)
        fatal("madviseHuge range outside any VMA");
    if (length == 0)
        return;
    addInterval(vma->hugeAdvised, start, start + length);
}

void
AddressSpace::madviseNoHuge(Addr start, std::uint64_t length)
{
    Vma *vma = findVmaMutable(start);
    if (vma == nullptr || start + length > vma->end)
        fatal("madviseNoHuge range outside any VMA");
    if (length == 0)
        return;
    addInterval(vma->hugeForbidden, start, start + length);
}

const Vma *
AddressSpace::findVma(Addr vaddr) const
{
    auto it = regions.upper_bound(vaddr);
    if (it == regions.begin())
        return nullptr;
    --it;
    return it->second.contains(vaddr) ? &it->second : nullptr;
}

Vma *
AddressSpace::findVmaMutable(Addr vaddr)
{
    return const_cast<Vma *>(findVma(vaddr));
}

std::vector<const Vma *>
AddressSpace::vmas() const
{
    std::vector<const Vma *> out;
    out.reserve(regions.size());
    for (const auto &[start, vma] : regions) {
        (void)start;
        out.push_back(&vma);
    }
    return out;
}

bool
AddressSpace::hugeEligible(Addr vaddr) const
{
    const Vma *vma = findVma(vaddr);
    if (vma == nullptr)
        return false;
    const std::uint64_t huge = hugePageBytes();
    const Addr hstart = alignDown(vaddr, huge);
    const Addr hend = hstart + huge;
    if (vma->fileCache != nullptr)
        return false; // file mappings are never THP-backed
    if (hstart < vma->start || hend > vma->end)
        return false;
    if (intersects(vma->hugeForbidden, hstart, hend))
        return false;
    switch (thp.mode) {
      case ThpMode::Never:
        return false;
      case ThpMode::Always:
        return true;
      case ThpMode::Madvise:
        return coveredBy(vma->hugeAdvised, hstart, hend);
    }
    return false;
}

bool
AddressSpace::regionEmpty(std::uint64_t huge_vpn) const
{
    return pt.regionEmpty(huge_vpn);
}

std::vector<std::uint64_t>
AddressSpace::presentInRegion(std::uint64_t huge_vpn) const
{
    std::vector<std::uint64_t> out;
    const std::uint64_t span = 1ull << hugeOrd;
    for (std::uint64_t v = huge_vpn; v < huge_vpn + span; ++v) {
        PageTable::Translation t = pt.lookup(v);
        if (t.valid && t.size == PageSizeClass::Base && t.pte.present)
            out.push_back(v);
    }
    return out;
}

TouchInfo
AddressSpace::touch(Addr vaddr, bool write)
{
    const std::uint64_t vpn = vpnOf(vaddr);
    PageTable::Translation t = pt.lookup(vpn);

    if (t.valid && t.pte.present) {
        TouchInfo info;
        info.frame = t.pte.frame;
        info.size = t.size;
        // Resident file pages feed the replacement policy at TLB-walk
        // granularity (and latch Dirty on writes). The hull check is
        // one always-false compare on machines with no file mappings.
        if (vaddr >= fileLo && vaddr < fileHi) {
            const Vma *vma = findVma(vaddr);
            if (vma != nullptr && vma->fileCache != nullptr) {
                vma->fileCache->notePageAccess(
                    vma->fileId, (vaddr - vma->start) / pageBytes,
                    write);
            }
        }
        return info;
    }
    return handleFault(vaddr, t, write);
}

mem::MemoryNode &
AddressSpace::preferredNode(std::uint64_t vpn)
{
    if (remote == nullptr)
        return node;
    switch (placement) {
      case mem::NumaPlacement::FirstTouch:
      case mem::NumaPlacement::PreferredLocal:
        return node;
      case mem::NumaPlacement::RemoteOnly:
        return *remote;
      case mem::NumaPlacement::Interleave:
        // Alternate whole huge regions between the nodes so a region
        // stays collapsible on one node (numactl -i at THP
        // granularity).
        return (pt.hugeVpnOf(vpn) >> hugeOrd) & 1 ? *remote : node;
    }
    return node;
}

mem::AllocOutcome
AddressSpace::allocBase(std::uint64_t vpn, bool &spilled)
{
    spilled = false;
    mem::MemoryNode::Request req;
    req.order = 0;
    req.mt = mem::Migratetype::Movable;
    req.mayReclaim = true;
    req.maySwap = true;
    if (remote == nullptr) {
        // Single-node machine: the original one-call path, untouched.
        req.client = clientId;
        return node.allocate(req);
    }

    mem::MemoryNode &pref = preferredNode(vpn);
    if (placement == mem::NumaPlacement::FirstTouch ||
        placement == mem::NumaPlacement::RemoteOnly) {
        // Strict binding: all escalation (reclaim, swap) happens on
        // the bound node, never on the other one.
        req.client = clientFor(pref);
        return pref.allocate(req);
    }

    // PreferredLocal / Interleave: exhaust both nodes' free memory
    // before swapping on the preferred node, the way Linux walks the
    // whole zonelist before reclaiming in anger.
    mem::MemoryNode &other = &pref == &node ? *remote : node;
    req.maySwap = false;
    req.client = clientFor(pref);
    mem::AllocOutcome out = pref.allocate(req);
    if (out.success)
        return out;
    req.client = clientFor(other);
    mem::AllocOutcome spill = other.allocate(req);
    if (spill.success) {
        spilled = true;
        spill.reclaimedPages += out.reclaimedPages;
        return spill;
    }
    req.maySwap = true;
    req.client = clientFor(pref);
    mem::AllocOutcome last = pref.allocate(req);
    last.reclaimedPages += out.reclaimedPages + spill.reclaimedPages;
    return last;
}

TouchInfo
AddressSpace::handleFault(Addr vaddr, const PageTable::Translation &cur,
                          bool write)
{
    TouchInfo info;
    info.pageFault = true;

    Vma *vma = findVmaMutable(vaddr);
    if (vma == nullptr)
        panic("segfault: access to unmapped address 0x%llx",
              static_cast<unsigned long long>(vaddr));

    const std::uint64_t vpn = vpnOf(vaddr);

    // File-backed fault: the cache allocates (evicting under pressure,
    // writing dirty pages back) and reports what the storage did. File
    // pages never enter the swap path, so this precedes the swap
    // branch; they are also never huge-backed.
    if (vma->fileCache != nullptr) {
        GPSM_ASSERT(!cur.valid || !cur.pte.swapped,
                    "file page marked swapped");
        const mem::FileFaultResult fr = vma->fileCache->faultPage(
            vma->fileId, (vaddr - vma->start) / pageBytes, write, vpn,
            this);
        if (!fr.success)
            fatal("out of memory faulting file page 0x%llx ('%s')",
                  static_cast<unsigned long long>(vaddr),
                  vma->name.c_str());
        pt.mapBase(vpn, fr.frame);
        ++vma->presentBasePages;
        ++minorFaults;
        info.frame = fr.frame;
        info.size = PageSizeClass::Base;
        info.reclaimedPages = fr.reclaimedPages;
        info.swappedOutPages = fr.swappedPages;
        info.fileReadPages = fr.storageRead ? 1 : 0;
        info.writebackPages = fr.writebackPages;
        return info;
    }

    // Major fault: page lives in swap.
    if (cur.valid && cur.pte.swapped) {
        bool spilled = false;
        mem::AllocOutcome out = allocBase(vpn, spilled);
        if (!out.success)
            fatal("out of memory swapping in page 0x%llx",
                  static_cast<unsigned long long>(vaddr));
        info.reclaimedPages = out.reclaimedPages;
        info.swappedOutPages = out.swappedPages;
        swap.freeSlot(cur.pte.swapSlot);
        pt.restoreSwapped(vpn, out.frame);
        rmap.emplace(out.frame, vpn);
        nodeOf(out.frame).noteSwappable(out.frame);
        --vma->swappedBasePages;
        ++vma->presentBasePages;
        ++majorFaults;
        ++swapInPages;
        info.frame = out.frame;
        info.size = PageSizeClass::Base;
        info.majorFault = true;
        info.remote = mem::nodeOfFrame(out.frame) == 1;
        if (info.remote)
            ++remotePlacedPages;
        if (spilled)
            ++spilledPages;
        return info;
    }

    // Fresh fault: maybe satisfy with a huge page.
    const std::uint64_t huge_vpn = pt.hugeVpnOf(vpn);
    const bool eligible = hugeEligible(vaddr);
    if (eligible && regionEmpty(huge_vpn)) {
        const Addr hstart = alignDown(vaddr, hugePageBytes());
        bool may_compact = false;
        switch (thp.defrag) {
          case ThpDefrag::Never:
            may_compact = false;
            break;
          case ThpDefrag::Always:
            may_compact = true;
            break;
          case ThpDefrag::Madvise:
            may_compact = coveredBy(vma->hugeAdvised, hstart,
                                    hstart + hugePageBytes());
            break;
        }

        // Huge allocations bind to the policy node with no cross-node
        // fallback (__GFP_THISNODE): a huge page never straddles or
        // silently migrates nodes, matching Linux's THP fault path.
        mem::MemoryNode &target = preferredNode(vpn);
        mem::MemoryNode::Request req;
        req.order = hugeOrd;
        req.mt = mem::Migratetype::Movable;
        req.client = clientFor(target);
        req.mayReclaim = thp.reclaimForHuge;
        req.mayCompact = may_compact;
        req.maySwap = false;
        mem::AllocOutcome out = target.allocate(req);
        info.migratedPages += out.migratedPages;
        info.reclaimedPages += out.reclaimedPages;
        info.compactionFailures += out.compactionFailures;

        // Graceful degradation: a failure may be a transient window
        // (fault injection, or a hog releasing memory momentarily), so
        // optionally wait it out with bounded, backoff-charged retries
        // before the permanent base-page fallback.
        for (unsigned attempt = 0;
             !out.success && attempt < thp.hugeFaultRetries; ++attempt) {
            ++info.hugeAllocRetries;
            ++hugeRetries;
            out = target.allocate(req);
            info.migratedPages += out.migratedPages;
            info.reclaimedPages += out.reclaimedPages;
            info.compactionFailures += out.compactionFailures;
        }
        if (out.success) {
            pt.mapHuge(huge_vpn, out.frame);
            ++vma->hugePages;
            ++hugeFaults;
            info.frame = out.frame;
            info.size = PageSizeClass::Huge;
            info.hugeFault = true;
            info.remote = mem::nodeOfFrame(out.frame) == 1;
            if (info.remote)
                remotePlacedPages += 1ull << hugeOrd;
            return info;
        }
        ++hugeFallbacks;
    }

    // Base-page fault.
    bool spilled = false;
    mem::AllocOutcome out = allocBase(vpn, spilled);
    if (!out.success)
        fatal("out of memory: node exhausted and swap full (footprint "
              "%llu bytes)",
              static_cast<unsigned long long>(footprintBytes()));
    info.reclaimedPages += out.reclaimedPages;
    info.swappedOutPages += out.swappedPages;
    pt.mapBase(vpn, out.frame);
    rmap.emplace(out.frame, vpn);
    nodeOf(out.frame).noteSwappable(out.frame);
    ++vma->presentBasePages;
    ++minorFaults;
    info.frame = out.frame;
    info.size = PageSizeClass::Base;
    info.remote = mem::nodeOfFrame(out.frame) == 1;
    if (info.remote)
        ++remotePlacedPages;
    if (spilled)
        ++spilledPages;
    return info;
}

PageTable::Translation
AddressSpace::translate(Addr vaddr) const
{
    return pt.lookup(vpnOf(vaddr));
}

AddressSpace::PromoteResult
AddressSpace::promote(Addr vaddr)
{
    PromoteResult res;
    Vma *vma = findVmaMutable(vaddr);
    if (vma == nullptr || !hugeEligible(vaddr))
        return res;

    const std::uint64_t huge_vpn = pt.hugeVpnOf(vpnOf(vaddr));
    if (pt.lookup(huge_vpn).valid &&
        pt.lookup(huge_vpn).size == PageSizeClass::Huge) {
        return res; // already huge
    }

    // Collect candidate base pages; bail out on swapped entries
    // (khugepaged's max_ptes_swap behaviour, simplified to zero).
    const std::uint64_t span = 1ull << hugeOrd;
    std::vector<std::uint64_t> present;
    for (std::uint64_t v = huge_vpn; v < huge_vpn + span; ++v) {
        PageTable::Translation t = pt.lookup(v);
        if (!t.valid)
            continue;
        if (t.pte.swapped)
            return res;
        present.push_back(v);
    }
    if (present.size() < thp.khugepagedMinPresent)
        return res;

    // Collapse target node: local when migrate-on-promote is set
    // (AutoNUMA-style pull), otherwise wherever the majority of the
    // region's base pages already live — a collapse should not move
    // data across the interconnect unasked.
    mem::MemoryNode *target = &node;
    if (remote != nullptr && !migrateOnPromote) {
        std::uint64_t remote_pages = 0;
        for (std::uint64_t v : present) {
            if (mem::nodeOfFrame(pt.lookup(v).pte.frame) == 1)
                ++remote_pages;
        }
        if (remote_pages * 2 > present.size())
            target = remote;
    }

    mem::MemoryNode::Request req;
    req.order = hugeOrd;
    req.mt = mem::Migratetype::Movable;
    req.client = clientFor(*target);
    req.mayReclaim = thp.reclaimForHuge;
    req.mayCompact = thp.defrag != ThpDefrag::Never;
    req.maySwap = false;
    mem::AllocOutcome out = target->allocate(req);
    res.migratedPages = out.migratedPages;
    res.reclaimedPages = out.reclaimedPages;
    if (!out.success)
        return res;

    // Copy and retire the old base pages.
    std::uint64_t moved = 0;
    for (std::uint64_t v : present) {
        PageTable::Translation t = pt.lookup(v);
        rmap.erase(t.pte.frame);
        if (mem::nodeOfFrame(t.pte.frame) !=
            mem::nodeOfFrame(out.frame)) {
            ++moved;
        }
        nodeOf(t.pte.frame).free(t.pte.frame);
        pt.unmapBase(v);
    }
    if (remote != nullptr)
        promoteMovedPages += moved;
    vma->presentBasePages -= present.size();
    for (std::uint64_t v : present) {
        pendingInvalidations.push_back(
            TlbInvalidation{false, v, PageSizeClass::Base});
    }
    pt.mapHuge(huge_vpn, out.frame);
    ++vma->hugePages;
    ++promotions;
    if (traceHook != nullptr)
        traceHook->traceEvent(obs::TraceKind::Promotion,
                              present.size(), vma->name.c_str());
    promotionCopiedPages += present.size();
    res.copiedPages = present.size();
    res.success = true;
    return res;
}

void
AddressSpace::demote(Addr vaddr)
{
    const std::uint64_t vpn = vpnOf(vaddr);
    PageTable::Translation t = pt.lookup(vpn);
    if (!t.valid || t.size != PageSizeClass::Huge)
        fatal("demote of non-huge-mapped address 0x%llx",
              static_cast<unsigned long long>(vaddr));
    Vma *vma = findVmaMutable(vaddr);
    GPSM_ASSERT(vma != nullptr);

    // Physically split the huge block so frames free independently.
    // The block is contiguous within one node, so all split frames
    // stay with the node that owns the head.
    mem::MemoryNode &owner = nodeOf(t.pte.frame);
    mem::BuddyAllocator &buddy = owner.buddy();
    const mem::FrameNum head = t.pte.frame;
    const std::uint64_t span = 1ull << hugeOrd;
    for (unsigned order = hugeOrd; order > 0; --order)
        for (mem::FrameNum f = head; f < head + span; f += 1ull << order)
            buddy.splitAllocated(f);

    const std::uint64_t huge_vpn = pt.hugeVpnOf(vpn);
    pt.demoteToBase(vpn);
    for (std::uint64_t i = 0; i < span; ++i) {
        rmap.emplace(head + i, huge_vpn + i);
        owner.noteSwappable(head + i);
    }
    --vma->hugePages;
    vma->presentBasePages += span;
    ++demotions;
    if (traceHook != nullptr)
        traceHook->traceEvent(obs::TraceKind::Demotion, span,
                              vma->name.c_str());
    pendingInvalidations.push_back(
        TlbInvalidation{false, huge_vpn, PageSizeClass::Huge});
}

std::uint64_t
AddressSpace::hugeBackedBytes() const
{
    std::uint64_t pages = 0;
    for (const auto &[start, vma] : regions) {
        (void)start;
        pages += vma.hugePages;
    }
    return pages * hugePageBytes();
}

std::uint64_t
AddressSpace::giantBackedBytes() const
{
    std::uint64_t pages = 0;
    for (const auto &[start, vma] : regions) {
        (void)start;
        pages += vma.giantPages;
    }
    return pages * node.giantPageBytes();
}

std::uint64_t
AddressSpace::footprintBytes() const
{
    std::uint64_t bytes = 0;
    for (const auto &[start, vma] : regions) {
        (void)start;
        bytes += (vma.presentBasePages + vma.swappedBasePages) * pageBytes;
        bytes += vma.hugePages * hugePageBytes();
        bytes += vma.giantPages * node.giantPageBytes();
    }
    return bytes;
}

std::vector<TlbInvalidation>
AddressSpace::drainInvalidations()
{
    std::vector<TlbInvalidation> out;
    out.swap(pendingInvalidations);
    return out;
}

void
AddressSpace::migratePage(mem::FrameNum from, mem::FrameNum to)
{
    auto it = rmap.find(from);
    GPSM_ASSERT(it != rmap.end(),
                "migration of a frame this space does not own");
    const std::uint64_t vpn = it->second;
    rmap.erase(it);
    pt.retargetBase(vpn, to);
    rmap.emplace(to, vpn);
    nodeOf(to).noteSwappable(to);
    pendingInvalidations.push_back(
        TlbInvalidation{false, vpn, PageSizeClass::Base});
}

void
AddressSpace::unmapFilePage(std::uint64_t vpn, bool invalidateTlb)
{
    Vma *vma = findVmaMutable(vpn * pageBytes);
    GPSM_ASSERT(vma != nullptr && vma->fileCache != nullptr,
                "unmapFilePage outside a file-backed VMA");
    pt.unmapBase(vpn);
    --vma->presentBasePages;
    if (invalidateTlb) {
        pendingInvalidations.push_back(
            TlbInvalidation{false, vpn, PageSizeClass::Base});
    }
}

void
AddressSpace::retargetFilePage(std::uint64_t vpn, mem::FrameNum to)
{
    pt.retargetBase(vpn, to);
    pendingInvalidations.push_back(
        TlbInvalidation{false, vpn, PageSizeClass::Base});
}

bool
AddressSpace::evictPage(mem::FrameNum frame)
{
    auto it = rmap.find(frame);
    if (it == rmap.end())
        return false;
    const std::uint64_t slot = swap.allocSlot();
    if (slot == ~0ull)
        return false; // swap device full
    const std::uint64_t vpn = it->second;
    Vma *vma = findVmaMutable(vpn * pageBytes);
    GPSM_ASSERT(vma != nullptr);
    pt.markSwapped(vpn, slot);
    rmap.erase(it);
    nodeOf(frame).free(frame);
    --vma->presentBasePages;
    ++vma->swappedBasePages;
    ++swapOutPages;
    pendingInvalidations.push_back(
        TlbInvalidation{false, vpn, PageSizeClass::Base});
    return true;
}

void
AddressSpace::registerStats(StatSet &stats,
                            const std::string &prefix) const
{
    stats.registerCounter(prefix + ".minorFaults", &minorFaults,
                          "base-page demand faults");
    stats.registerCounter(prefix + ".hugeFaults", &hugeFaults,
                          "faults satisfied with a huge page");
    stats.registerCounter(prefix + ".majorFaults", &majorFaults,
                          "faults served from swap");
    stats.registerCounter(prefix + ".hugeFallbacks", &hugeFallbacks,
                          "huge-eligible faults that fell back to base "
                          "pages");
    stats.registerCounter(prefix + ".hugeRetries", &hugeRetries,
                          "bounded huge-allocation retries taken on "
                          "the fault path before fallback");
    stats.registerCounter(prefix + ".promotions", &promotions,
                          "khugepaged collapses");
    stats.registerCounter(prefix + ".demotions", &demotions,
                          "huge pages split back to base pages");
    stats.registerCounter(prefix + ".promotionCopiedPages",
                          &promotionCopiedPages,
                          "base pages copied during collapses");
    stats.registerCounter(prefix + ".swapInPages", &swapInPages,
                          "pages read back from swap");
    stats.registerCounter(prefix + ".swapOutPages", &swapOutPages,
                          "pages written to swap");
    if (remote != nullptr) {
        // Registered only on a two-node machine so single-node stat
        // dumps (and the metrics documents built from them) keep their
        // exact pre-NUMA key set.
        stats.registerCounter(prefix + ".remotePlacedPages",
                              &remotePlacedPages,
                              "base-page units placed on the remote "
                              "node at fault time");
        stats.registerCounter(prefix + ".spilledPages", &spilledPages,
                              "placements that fell back to the "
                              "non-preferred node");
        stats.registerCounter(prefix + ".promoteMovedPages",
                              &promoteMovedPages,
                              "pages that changed node during "
                              "khugepaged collapse");
    }
}

} // namespace gpsm::vm
