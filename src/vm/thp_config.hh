/**
 * @file
 * Transparent huge page policy knobs, mirroring Linux sysfs settings.
 */

#ifndef GPSM_VM_THP_CONFIG_HH
#define GPSM_VM_THP_CONFIG_HH

#include <cstdint>

namespace gpsm::vm
{

/**
 * /sys/kernel/mm/transparent_hugepage/enabled:
 * - Never: base pages only (the paper's baseline).
 * - Madvise: huge pages only inside MADV_HUGEPAGE regions
 *   (programmer-directed selective THP).
 * - Always: system-wide greedy THP (Linux's default policy in the
 *   paper's characterization).
 */
enum class ThpMode : std::uint8_t
{
    Never,
    Madvise,
    Always,
};

const char *thpModeName(ThpMode mode);

/**
 * /sys/kernel/mm/transparent_hugepage/defrag analogue: when may the
 * fault path perform direct compaction?
 */
enum class ThpDefrag : std::uint8_t
{
    /** Never compact at fault time (fall back to base pages). */
    Never,
    /** Compact only for MADV_HUGEPAGE regions (Linux default). */
    Madvise,
    /** Compact for every eligible fault. */
    Always,
};

struct ThpConfig
{
    ThpMode mode = ThpMode::Never;
    ThpDefrag defrag = ThpDefrag::Madvise;

    /** Reclaim page cache on huge-page allocation failure. */
    bool reclaimForHuge = true;

    /** khugepaged background promotion. */
    bool khugepagedEnabled = true;
    /** Pages khugepaged scans per wakeup (pages_to_scan). */
    std::uint64_t khugepagedScanPages = 4096;
    /**
     * Minimum present base pages for a region to be promoted
     * (512 - max_ptes_none in Linux terms; 1 reproduces the greedy
     * default, higher values model utilization-aware policies like
     * Ingens).
     */
    std::uint64_t khugepagedMinPresent = 1;

    /**
     * Promote the regions with the highest observed page-walk counts
     * first (HawkEye-style access tracking) instead of scanning the
     * address space linearly.
     */
    bool khugepagedHotFirst = false;

    /**
     * Bounded retries of a failed huge-order allocation on the fault
     * path before falling back to base pages (graceful degradation
     * under transient, fault-injected failure windows; each retry is
     * charged CostModel::hugeRetryBackoffCycles of backoff). 0 — the
     * default, and Linux's behaviour — falls back immediately.
     */
    unsigned hugeFaultRetries = 0;

    /** Convenience presets. */
    static ThpConfig
    never()
    {
        ThpConfig c;
        c.mode = ThpMode::Never;
        c.khugepagedEnabled = false;
        return c;
    }

    static ThpConfig
    always()
    {
        ThpConfig c;
        c.mode = ThpMode::Always;
        c.defrag = ThpDefrag::Always;
        return c;
    }

    static ThpConfig
    madvise()
    {
        ThpConfig c;
        c.mode = ThpMode::Madvise;
        c.defrag = ThpDefrag::Madvise;
        return c;
    }
};

} // namespace gpsm::vm

#endif // GPSM_VM_THP_CONFIG_HH
