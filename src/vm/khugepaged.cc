/**
 * @file
 * Khugepaged implementation.
 */

#include "vm/khugepaged.hh"

#include <algorithm>
#include <vector>

#include "util/bitops.hh"
#include "vm/address_space.hh"

namespace gpsm::vm
{

Khugepaged::ScanResult
Khugepaged::scan(std::uint64_t page_budget)
{
    ScanResult res;
    if (!space.thpConfig().khugepagedEnabled)
        return res;

    const std::uint64_t huge = space.hugePageBytes();
    const std::uint64_t span_pages = huge / space.basePageBytes();

    // Flat list of candidate regions across all VMAs, in address
    // order, scanned round-robin from the saved cursor.
    std::vector<Addr> all;
    for (const Vma *vma : space.vmas()) {
        for (Addr region = alignUp(vma->start, huge);
             region + huge <= vma->end; region += huge) {
            all.push_back(region);
        }
    }
    if (all.empty())
        return res;
    std::sort(all.begin(), all.end());

    size_t start = static_cast<size_t>(
        std::lower_bound(all.begin(), all.end(), cursor) - all.begin());
    if (start == all.size())
        start = 0;

    std::uint64_t budget = page_budget;
    for (size_t i = 0; i < all.size() && budget >= span_pages; ++i) {
        const Addr region = all[(start + i) % all.size()];
        budget -= span_pages;
        ++res.regionsScanned;
        ++regionsScanned;
        auto pr = space.promote(region);
        if (pr.success) {
            ++res.promoted;
            ++regionsPromoted;
            res.copiedPages += pr.copiedPages;
        }
        cursor = region + huge;
    }
    return res;
}

Khugepaged::ScanResult
Khugepaged::scanHotFirst(
    std::uint64_t page_budget,
    const std::unordered_map<std::uint64_t, std::uint32_t> &heat)
{
    ScanResult res;
    if (!space.thpConfig().khugepagedEnabled || heat.empty())
        return res;

    const std::uint64_t huge = space.hugePageBytes();
    const std::uint64_t span_pages = huge / space.basePageBytes();

    // Rank the observed regions by heat, hottest first; ties broken
    // by address for determinism.
    std::vector<std::pair<std::uint32_t, std::uint64_t>> ranked;
    ranked.reserve(heat.size());
    for (const auto &[region_vpn, count] : heat)
        ranked.emplace_back(count, region_vpn);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  return a.first != b.first ? a.first > b.first
                                            : a.second < b.second;
              });

    std::uint64_t budget = page_budget;
    for (const auto &[count, region_vpn] : ranked) {
        (void)count;
        if (budget < span_pages)
            break;
        const Addr region = region_vpn * huge;
        if (space.findVma(region) == nullptr)
            continue; // heat recorded for a since-unmapped region
        budget -= span_pages;
        ++res.regionsScanned;
        ++regionsScanned;
        auto pr = space.promote(region);
        if (pr.success) {
            ++res.promoted;
            ++regionsPromoted;
            res.copiedPages += pr.copiedPages;
        }
    }
    return res;
}

} // namespace gpsm::vm
