/**
 * @file
 * PageTable implementation: flat chunked PTE store.
 */

#include "vm/page_table.hh"

#include "util/logging.hh"

namespace gpsm::vm
{

PageTable::Chunk &
PageTable::ensureChunk(std::uint64_t vpn)
{
    const std::uint64_t ci = vpn >> chunkBits;
    if (ci >= chunks.size())
        chunks.resize(ci + 1);
    if (chunks[ci] == nullptr)
        chunks[ci] = std::make_unique<Chunk>();
    return *chunks[ci];
}

PageTable::Chunk &
PageTable::ensureBaseArena(std::uint64_t vpn)
{
    Chunk &c = ensureChunk(vpn);
    if (c.base.empty())
        c.base.resize(1ull << chunkBits);
    return c;
}

Pte *
PageTable::findBase(std::uint64_t vpn)
{
    const std::uint64_t ci = vpn >> chunkBits;
    if (ci >= chunks.size() || chunks[ci] == nullptr ||
        chunks[ci]->base.empty())
        return nullptr;
    Pte &pte = chunks[ci]->base[baseIndex(vpn)];
    return occupied(pte) ? &pte : nullptr;
}

bool
PageTable::covered(std::uint64_t vpn) const
{
    if (giantOrd != 0) {
        const std::uint64_t gi = vpn >> giantOrd;
        if (gi < giants.size() && occupied(giants[gi]))
            return true;
    }
    const Chunk *c = chunkAt(vpn);
    if (c == nullptr)
        return false;
    if (occupied(c->huge[regionIndex(vpn)]))
        return true;
    return !c->base.empty() && occupied(c->base[baseIndex(vpn)]);
}

bool
PageTable::regionEmpty(std::uint64_t vpn) const
{
    if (giantOrd != 0) {
        const std::uint64_t gi = vpn >> giantOrd;
        if (gi < giants.size() && occupied(giants[gi]))
            return false;
    }
    const Chunk *c = chunkAt(vpn);
    if (c == nullptr)
        return true;
    const unsigned r = regionIndex(vpn);
    return !occupied(c->huge[r]) && c->regionBaseCount[r] == 0;
}

void
PageTable::mapBase(std::uint64_t vpn, mem::FrameNum frame)
{
    Chunk &c = ensureBaseArena(vpn);
    if (occupied(c.huge[regionIndex(vpn)]))
        panic("mapBase under existing huge mapping, vpn %llu",
              static_cast<unsigned long long>(vpn));
    Pte &pte = c.base[baseIndex(vpn)];
    if (occupied(pte))
        panic("double mapBase of vpn %llu",
              static_cast<unsigned long long>(vpn));
    pte.frame = frame;
    pte.present = true;
    pte.swapped = false;
    pte.swapSlot = 0;
    ++c.regionBaseCount[regionIndex(vpn)];
    ++nBase;
}

void
PageTable::mapHuge(std::uint64_t vpn, mem::FrameNum frame)
{
    const std::uint64_t head = hugeVpnOf(vpn);
    Chunk &c = ensureChunk(head);
    const unsigned r = regionIndex(head);
    if (c.regionBaseCount[r] != 0) {
        // Report the lowest conflicting VPN, as the full scan did.
        const std::uint64_t span = 1ull << hugeOrd;
        for (std::uint64_t v = head; v < head + span; ++v)
            if (occupied(c.base[baseIndex(v)]))
                panic("mapHuge over existing base mapping, vpn %llu",
                      static_cast<unsigned long long>(v));
    }
    Pte &pte = c.huge[r];
    if (occupied(pte))
        panic("double mapHuge of vpn %llu",
              static_cast<unsigned long long>(head));
    pte.frame = frame;
    pte.present = true;
    pte.swapped = false;
    pte.swapSlot = 0;
    ++nHuge;
}

void
PageTable::mapGiant(std::uint64_t vpn, mem::FrameNum frame)
{
    GPSM_ASSERT(giantOrd != 0, "giant level disabled");
    const std::uint64_t head = giantVpnOf(vpn);
    // Scan the covered huge regions; inside each, a base conflict at
    // the lowest occupied VPN and a huge conflict at the region head
    // reproduce the per-VPN scan's first-conflict report.
    for (std::uint64_t rhead = head; rhead < head + (1ull << giantOrd);
         rhead += 1ull << hugeOrd) {
        const Chunk *c = chunkAt(rhead);
        if (c == nullptr)
            continue;
        const unsigned r = regionIndex(rhead);
        std::uint64_t conflict = ~0ull;
        if (c->regionBaseCount[r] != 0) {
            const std::uint64_t span = 1ull << hugeOrd;
            for (std::uint64_t v = rhead; v < rhead + span; ++v)
                if (occupied(c->base[baseIndex(v)])) {
                    conflict = v;
                    break;
                }
        }
        if (occupied(c->huge[r]))
            conflict = std::min(conflict, rhead);
        if (conflict != ~0ull)
            panic("mapGiant over existing mapping, vpn %llu",
                  static_cast<unsigned long long>(conflict));
    }
    const std::uint64_t gi = head >> giantOrd;
    if (gi >= giants.size())
        giants.resize(gi + 1);
    Pte &pte = giants[gi];
    if (occupied(pte))
        panic("double mapGiant of vpn %llu",
              static_cast<unsigned long long>(head));
    pte.frame = frame;
    pte.present = true;
    pte.swapped = false;
    pte.swapSlot = 0;
    ++nGiant;
}

void
PageTable::unmapGiant(std::uint64_t vpn)
{
    const std::uint64_t gi = giantVpnOf(vpn) >> giantOrd;
    if (giantOrd == 0 || gi >= giants.size() || !occupied(giants[gi]))
        panic("unmapGiant of absent vpn %llu",
              static_cast<unsigned long long>(vpn));
    giants[gi] = Pte{};
    --nGiant;
}

void
PageTable::markSwapped(std::uint64_t vpn, std::uint64_t slot)
{
    Pte *pte = findBase(vpn);
    if (pte == nullptr || !pte->present)
        panic("markSwapped of absent base vpn %llu",
              static_cast<unsigned long long>(vpn));
    pte->present = false;
    pte->swapped = true;
    pte->swapSlot = slot;
    pte->frame = mem::invalidFrame;
}

void
PageTable::restoreSwapped(std::uint64_t vpn, mem::FrameNum frame)
{
    Pte *pte = findBase(vpn);
    if (pte == nullptr || !pte->swapped)
        panic("restoreSwapped of non-swapped vpn %llu",
              static_cast<unsigned long long>(vpn));
    pte->present = true;
    pte->swapped = false;
    pte->frame = frame;
}

void
PageTable::unmapBase(std::uint64_t vpn)
{
    Pte *pte = findBase(vpn);
    if (pte == nullptr)
        panic("unmapBase of absent vpn %llu",
              static_cast<unsigned long long>(vpn));
    *pte = Pte{};
    Chunk &c = *chunks[vpn >> chunkBits];
    --c.regionBaseCount[regionIndex(vpn)];
    --nBase;
}

void
PageTable::unmapHuge(std::uint64_t vpn)
{
    const std::uint64_t head = hugeVpnOf(vpn);
    const std::uint64_t ci = head >> chunkBits;
    Chunk *c = ci < chunks.size() ? chunks[ci].get() : nullptr;
    if (c == nullptr || !occupied(c->huge[regionIndex(head)]))
        panic("unmapHuge of absent vpn %llu",
              static_cast<unsigned long long>(vpn));
    c->huge[regionIndex(head)] = Pte{};
    --nHuge;
}

void
PageTable::demoteToBase(std::uint64_t vpn)
{
    const std::uint64_t head = hugeVpnOf(vpn);
    const std::uint64_t ci = head >> chunkBits;
    Chunk *c = ci < chunks.size() ? chunks[ci].get() : nullptr;
    if (c == nullptr || !c->huge[regionIndex(head)].present)
        panic("demoteToBase of absent huge vpn %llu",
              static_cast<unsigned long long>(head));
    const mem::FrameNum frame = c->huge[regionIndex(head)].frame;
    c->huge[regionIndex(head)] = Pte{};
    --nHuge;
    const std::uint64_t span = 1ull << hugeOrd;
    for (std::uint64_t i = 0; i < span; ++i)
        mapBase(head + i, frame + i);
}

void
PageTable::retargetBase(std::uint64_t vpn, mem::FrameNum frame)
{
    Pte *pte = findBase(vpn);
    if (pte == nullptr || !pte->present)
        panic("retargetBase of absent vpn %llu",
              static_cast<unsigned long long>(vpn));
    pte->frame = frame;
}

} // namespace gpsm::vm
