/**
 * @file
 * PageTable implementation.
 */

#include "vm/page_table.hh"

#include "util/logging.hh"

namespace gpsm::vm
{

PageTable::Translation
PageTable::lookup(std::uint64_t vpn) const
{
    Translation t;
    if (giantOrd != 0) {
        auto git = giant.find(giantVpnOf(vpn));
        if (git != giant.end()) {
            t.valid = true;
            t.size = PageSizeClass::Giant;
            t.pte = git->second;
            return t;
        }
    }
    auto hit = huge.find(hugeVpnOf(vpn));
    if (hit != huge.end()) {
        t.valid = true;
        t.size = PageSizeClass::Huge;
        t.pte = hit->second;
        return t;
    }
    auto bit = base.find(vpn);
    if (bit != base.end()) {
        t.valid = true;
        t.size = PageSizeClass::Base;
        t.pte = bit->second;
    }
    return t;
}

bool
PageTable::covered(std::uint64_t vpn) const
{
    if (giantOrd != 0 && giant.count(giantVpnOf(vpn)) != 0)
        return true;
    return huge.count(hugeVpnOf(vpn)) != 0 || base.count(vpn) != 0;
}

void
PageTable::mapBase(std::uint64_t vpn, mem::FrameNum frame)
{
    if (huge.count(hugeVpnOf(vpn)))
        panic("mapBase under existing huge mapping, vpn %llu",
              static_cast<unsigned long long>(vpn));
    Pte pte;
    pte.frame = frame;
    pte.present = true;
    auto [it, inserted] = base.emplace(vpn, pte);
    (void)it;
    if (!inserted)
        panic("double mapBase of vpn %llu",
              static_cast<unsigned long long>(vpn));
}

void
PageTable::mapHuge(std::uint64_t vpn, mem::FrameNum frame)
{
    const std::uint64_t head = hugeVpnOf(vpn);
    const std::uint64_t span = 1ull << hugeOrd;
    for (std::uint64_t v = head; v < head + span; ++v) {
        if (base.count(v))
            panic("mapHuge over existing base mapping, vpn %llu",
                  static_cast<unsigned long long>(v));
    }
    Pte pte;
    pte.frame = frame;
    pte.present = true;
    auto [it, inserted] = huge.emplace(head, pte);
    (void)it;
    if (!inserted)
        panic("double mapHuge of vpn %llu",
              static_cast<unsigned long long>(head));
}

void
PageTable::mapGiant(std::uint64_t vpn, mem::FrameNum frame)
{
    GPSM_ASSERT(giantOrd != 0, "giant level disabled");
    const std::uint64_t head = giantVpnOf(vpn);
    const std::uint64_t span = 1ull << giantOrd;
    for (std::uint64_t v = head; v < head + span; ++v) {
        if (base.count(v) != 0 || huge.count(hugeVpnOf(v)) != 0)
            panic("mapGiant over existing mapping, vpn %llu",
                  static_cast<unsigned long long>(v));
    }
    Pte pte;
    pte.frame = frame;
    pte.present = true;
    auto [it, inserted] = giant.emplace(head, pte);
    (void)it;
    if (!inserted)
        panic("double mapGiant of vpn %llu",
              static_cast<unsigned long long>(head));
}

void
PageTable::unmapGiant(std::uint64_t vpn)
{
    if (giant.erase(giantVpnOf(vpn)) == 0)
        panic("unmapGiant of absent vpn %llu",
              static_cast<unsigned long long>(vpn));
}

void
PageTable::markSwapped(std::uint64_t vpn, std::uint64_t slot)
{
    auto it = base.find(vpn);
    if (it == base.end() || !it->second.present)
        panic("markSwapped of absent base vpn %llu",
              static_cast<unsigned long long>(vpn));
    it->second.present = false;
    it->second.swapped = true;
    it->second.swapSlot = slot;
    it->second.frame = mem::invalidFrame;
}

void
PageTable::restoreSwapped(std::uint64_t vpn, mem::FrameNum frame)
{
    auto it = base.find(vpn);
    if (it == base.end() || !it->second.swapped)
        panic("restoreSwapped of non-swapped vpn %llu",
              static_cast<unsigned long long>(vpn));
    it->second.present = true;
    it->second.swapped = false;
    it->second.frame = frame;
}

void
PageTable::unmapBase(std::uint64_t vpn)
{
    if (base.erase(vpn) == 0)
        panic("unmapBase of absent vpn %llu",
              static_cast<unsigned long long>(vpn));
}

void
PageTable::unmapHuge(std::uint64_t vpn)
{
    if (huge.erase(hugeVpnOf(vpn)) == 0)
        panic("unmapHuge of absent vpn %llu",
              static_cast<unsigned long long>(vpn));
}

void
PageTable::demoteToBase(std::uint64_t vpn)
{
    const std::uint64_t head = hugeVpnOf(vpn);
    auto it = huge.find(head);
    if (it == huge.end() || !it->second.present)
        panic("demoteToBase of absent huge vpn %llu",
              static_cast<unsigned long long>(head));
    const mem::FrameNum frame = it->second.frame;
    huge.erase(it);
    const std::uint64_t span = 1ull << hugeOrd;
    for (std::uint64_t i = 0; i < span; ++i)
        mapBase(head + i, frame + i);
}

void
PageTable::retargetBase(std::uint64_t vpn, mem::FrameNum frame)
{
    auto it = base.find(vpn);
    if (it == base.end() || !it->second.present)
        panic("retargetBase of absent vpn %llu",
              static_cast<unsigned long long>(vpn));
    it->second.frame = frame;
}

} // namespace gpsm::vm
