/**
 * @file
 * Process address space: VMAs, demand paging, THP fault policy, swap,
 * and the owner-side half of compaction and khugepaged.
 */

#ifndef GPSM_VM_ADDRESS_SPACE_HH
#define GPSM_VM_ADDRESS_SPACE_HH

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/addr_space_cache.hh"
#include "mem/memory_node.hh"
#include "mem/swap_device.hh"
#include "mem/types.hh"
#include "obs/hooks.hh"
#include "util/stats.hh"
#include "util/units.hh"
#include "vm/page_table.hh"
#include "vm/thp_config.hh"

namespace gpsm::vm
{

/**
 * One virtual memory area (a contiguous mmap'd range).
 */
struct Vma
{
    Addr start = 0;
    Addr end = 0; // exclusive
    std::string name;

    /** MADV_HUGEPAGE intervals, disjoint and sorted, [start,end). */
    std::vector<std::pair<Addr, Addr>> hugeAdvised;
    /** MADV_NOHUGEPAGE intervals. */
    std::vector<std::pair<Addr, Addr>> hugeForbidden;

    /**
     * File backing (mmapFile): pages demand-fault through the
     * address-space cache and evict under pressure instead of
     * swapping. Never THP-eligible, like Linux file mappings outside
     * the niche file-THP configurations. nullptr = anonymous.
     */
    mem::AddressSpaceCache *fileCache = nullptr;
    mem::FileId fileId = mem::invalidFile;

    /** @name Live mapping counters @{ */
    std::uint64_t presentBasePages = 0;
    std::uint64_t swappedBasePages = 0;
    std::uint64_t hugePages = 0;
    std::uint64_t giantPages = 0;
    /** @} */

    std::uint64_t length() const { return end - start; }
    bool contains(Addr a) const { return a >= start && a < end; }
};

/**
 * One pending TLB invalidation, produced whenever a translation a TLB
 * may have cached stops being valid (migration, swap-out, promotion,
 * demotion, unmap). The Mmu drains these, invalidates matching entries
 * and charges shootdown cost.
 */
struct TlbInvalidation
{
    /** Invalidate everything (munmap). */
    bool flushAll = false;
    std::uint64_t vpn = 0;
    PageSizeClass size = PageSizeClass::Base;
};

/**
 * Events produced while making one virtual address accessible. The TLB
 * layer (Mmu) converts these into simulated cycles; the address space
 * itself is time-free.
 */
struct TouchInfo
{
    mem::FrameNum frame = mem::invalidFrame;
    PageSizeClass size = PageSizeClass::Base;

    bool pageFault = false;      ///< any fault was taken
    bool hugeFault = false;      ///< fault was satisfied with a huge page
    bool majorFault = false;     ///< page had to be read back from swap
    bool remote = false;         ///< fault was satisfied from node 1

    /** Escalation work performed on the fault path. */
    std::uint64_t migratedPages = 0;
    std::uint64_t reclaimedPages = 0;
    std::uint64_t swappedOutPages = 0;
    std::uint64_t compactionFailures = 0;
    /** Bounded huge-allocation retries taken before fallback
     *  (ThpConfig::hugeFaultRetries); each is charged backoff. */
    std::uint64_t hugeAllocRetries = 0;

    /** @name File-backed fault work (out-of-core mappings only) @{ */
    /** Pages read from backing storage (previously written back). */
    std::uint64_t fileReadPages = 0;
    /** Dirty file pages written back by evictions on this path. */
    std::uint64_t writebackPages = 0;
    /** @} */
};

/**
 * Two-node placement policy handed to an AddressSpace at construction.
 * The default (no remote node, FirstTouch) reproduces the single-node
 * machine exactly: every allocation goes to the local node through the
 * pre-NUMA code path.
 */
struct NumaPolicy
{
    /** The second node, or nullptr for a single-node machine. Must be
     *  built with mem::remoteNodeFrameBase and the same page geometry
     *  as the local node. */
    mem::MemoryNode *remoteNode = nullptr;
    mem::NumaPlacement placement = mem::NumaPlacement::FirstTouch;
    /** Pull remote-backed regions local when khugepaged collapses
     *  them (AutoNUMA-style promote-and-migrate). */
    bool migrateOnPromote = false;
};

/**
 * The simulated process address space.
 *
 * Responsibilities:
 * - virtual address allocation (mmap/munmap), huge-page aligned;
 * - madvise(MADV_HUGEPAGE / MADV_NOHUGEPAGE) interval bookkeeping;
 * - demand paging with Linux-like THP fault policy: on first touch of
 *   an eligible huge region, try a huge allocation (with optional
 *   reclaim and direct compaction), else fall back to a base page;
 * - swap-in of previously evicted pages (major faults);
 * - PageClient duties: retargeting mappings when compaction migrates a
 *   frame, and surrendering pages chosen as swap victims.
 *
 * All state-changing operations bump a pending-TLB-shootdown counter
 * that the Mmu drains to charge invalidation costs and flush stale
 * entries.
 */
class AddressSpace : public mem::PageClient, public mem::FileMapper
{
  public:
    AddressSpace(mem::MemoryNode &node, mem::SwapDevice &swap,
                 const ThpConfig &thp);
    /**
     * Two-node construction: @p numa names the remote node and the
     * placement policy. Huge allocations never cross nodes
     * (__GFP_THISNODE); base pages spill per policy.
     */
    AddressSpace(mem::MemoryNode &node, mem::SwapDevice &swap,
                 const ThpConfig &thp, const NumaPolicy &numa);
    ~AddressSpace() override;

    AddressSpace(const AddressSpace &) = delete;
    AddressSpace &operator=(const AddressSpace &) = delete;

    /** @name Region management @{ */

    /**
     * Reserve @p length bytes of virtual address space.
     * The base is huge-page aligned, as glibc arranges for large
     * allocations (and as the paper's madvise usage requires).
     */
    Addr mmap(std::uint64_t length, const std::string &name);

    /**
     * Reserve and *eagerly* map @p length bytes backed by giant pages
     * from the node's hugetlbfs-style pool (rounded up to whole giant
     * pages). Fatal when the pool cannot cover the request — explicit
     * reservations fail loudly, unlike THP.
     */
    Addr mmapGiant(std::uint64_t length, const std::string &name);

    /**
     * Reserve @p length bytes backed by file object @p file of the
     * given address-space cache. Pages demand-fault through the cache
     * with full escalation rights, so a mapping larger than DRAM runs
     * out-of-core: the cache evicts (writing dirty pages back) instead
     * of the allocator failing. File VMAs are never THP-eligible.
     */
    Addr mmapFile(std::uint64_t length, const std::string &name,
                  mem::AddressSpaceCache &cache, mem::FileId file);

    /** Unmap the entire VMA starting at @p start; frees its frames. */
    void munmap(Addr start);

    /** madvise(MADV_HUGEPAGE) on [start, start+length). */
    void madviseHuge(Addr start, std::uint64_t length);

    /** madvise(MADV_NOHUGEPAGE) on [start, start+length). */
    void madviseNoHuge(Addr start, std::uint64_t length);
    /** @} */

    /** @name Access path @{ */

    /**
     * Ensure @p vaddr is mapped, faulting if necessary, and report the
     * backing translation plus all fault-path events.
     */
    TouchInfo touch(Addr vaddr, bool write);

    /** Fault-free lookup (invalid result when unmapped). */
    PageTable::Translation translate(Addr vaddr) const;
    /** @} */

    /** @name khugepaged / policy hooks @{ */

    struct PromoteResult
    {
        bool success = false;
        std::uint64_t copiedPages = 0;
        std::uint64_t migratedPages = 0;
        std::uint64_t reclaimedPages = 0;
    };

    /**
     * Try to promote the huge region containing @p vaddr, copying the
     * present base pages into a fresh huge frame (khugepaged's
     * collapse operation).
     */
    PromoteResult promote(Addr vaddr);

    /**
     * Demote the huge mapping covering @p vaddr into base pages; the
     * physical huge block is split so constituent frames can be freed
     * or swapped individually.
     */
    void demote(Addr vaddr);

    /**
     * Is the huge region containing @p vaddr eligible for huge-page
     * backing under the current mode (ignoring what is mapped)?
     */
    bool hugeEligible(Addr vaddr) const;
    /** @} */

    /** @name Introspection @{ */
    const ThpConfig &thpConfig() const { return thp; }

    /**
     * Replace the THP configuration at runtime (the sysfs knobs are
     * writable on a live system; existing mappings are unaffected).
     */
    void updateThpConfig(const ThpConfig &config) { thp = config; }
    const PageTable &pageTable() const { return pt; }
    mem::MemoryNode &memoryNode() { return node; }
    /** The remote node, or nullptr on a single-node machine. */
    mem::MemoryNode *remoteMemoryNode() { return remote; }

    const Vma *findVma(Addr vaddr) const;
    std::vector<const Vma *> vmas() const;

    std::uint64_t basePageBytes() const { return pageBytes; }
    std::uint64_t hugePageBytes() const { return pageBytes << hugeOrd; }

    /** Total bytes currently backed by huge pages. */
    std::uint64_t hugeBackedBytes() const;
    /** Total bytes currently backed by giant pages. */
    std::uint64_t giantBackedBytes() const;
    /** Total mapped bytes (present base + swapped + huge). */
    std::uint64_t footprintBytes() const;

    /**
     * True when TLB invalidations are pending (checked on the hot
     * path; draining allocates, so callers test this first).
     */
    bool hasPendingInvalidations() const
    {
        return !pendingInvalidations.empty();
    }

    /** Move out the pending TLB invalidation events. */
    std::vector<TlbInvalidation> drainInvalidations();
    /** @} */

    /** @name PageClient @{ */
    void migratePage(mem::FrameNum from, mem::FrameNum to) override;
    bool evictPage(mem::FrameNum frame) override;
    const char *clientName() const override { return "addrspace"; }
    /** @} */

    /** @name FileMapper (cache-initiated PTE maintenance) @{ */
    void unmapFilePage(std::uint64_t vpn, bool invalidateTlb) override;
    void retargetFilePage(std::uint64_t vpn, mem::FrameNum to) override;
    /** @} */

    void registerStats(StatSet &stats, const std::string &prefix) const;

    /**
     * Install (or, with nullptr, remove) the telemetry trace hook;
     * promotion and demotion events are reported through it. Same
     * contract as the fault interceptors: at most one, caller-owned,
     * uninstalled before destruction, and observation-only.
     */
    void setTraceHook(obs::TraceHook *hook) { traceHook = hook; }

    /** @name Event counters @{ */
    Counter minorFaults;
    Counter hugeFaults;
    Counter majorFaults;
    Counter hugeFallbacks;  ///< eligible faults that fell back to base
    Counter hugeRetries;    ///< bounded fault-path huge-alloc retries
    Counter promotions;
    Counter demotions;
    Counter promotionCopiedPages;
    Counter swapInPages;
    Counter swapOutPages;

    /** @name Two-node counters (registered only when NUMA is active) @{ */
    Counter remotePlacedPages;  ///< base-page units placed on node 1
    Counter spilledPages;       ///< placements on the non-preferred node
    Counter promoteMovedPages;  ///< pages that changed node during collapse
    /** @} */
    /** @} */

  private:
    /** Fault in the page backing @p vaddr (not currently covered). */
    TouchInfo handleFault(Addr vaddr, const PageTable::Translation &cur,
                          bool write);

    /** True when [a,b) is fully inside one interval of @p set. */
    static bool coveredBy(const std::vector<std::pair<Addr, Addr>> &set,
                          Addr a, Addr b);
    /** True when [a,b) intersects any interval of @p set. */
    static bool intersects(const std::vector<std::pair<Addr, Addr>> &set,
                           Addr a, Addr b);
    static void addInterval(std::vector<std::pair<Addr, Addr>> &set,
                            Addr a, Addr b);

    Vma *findVmaMutable(Addr vaddr);

    /** Rebuild fileLo/fileHi from the surviving file-backed VMAs. */
    void recomputeFileHull();

    std::uint64_t vpnOf(Addr vaddr) const { return vaddr / pageBytes; }

    /** The node that owns @p frame (by global frame number). */
    mem::MemoryNode &nodeOf(mem::FrameNum frame)
    {
        return remote != nullptr && mem::nodeOfFrame(frame) == 1
                   ? *remote
                   : node;
    }

    /** This space's client id on @p n. */
    std::uint16_t clientFor(const mem::MemoryNode &n) const
    {
        return &n == &node ? clientId : remoteClientId;
    }

    /** Policy-preferred node for the region containing @p vpn. */
    mem::MemoryNode &preferredNode(std::uint64_t vpn);

    /** Allocate one base page per placement policy (spill allowed). */
    mem::AllocOutcome allocBase(std::uint64_t vpn, bool &spilled);

    /** True when no PTE (present or swapped) covers the huge region. */
    bool regionEmpty(std::uint64_t huge_vpn) const;
    /** Present base VPNs within the huge region. */
    std::vector<std::uint64_t> presentInRegion(std::uint64_t huge_vpn) const;

    mem::MemoryNode &node;
    mem::SwapDevice &swap;
    ThpConfig thp;
    obs::TraceHook *traceHook = nullptr;
    std::uint64_t pageBytes;
    unsigned hugeOrd;
    std::uint16_t clientId;

    /** @name Two-node state (inert on a single-node machine) @{ */
    mem::MemoryNode *remote = nullptr;
    mem::NumaPlacement placement = mem::NumaPlacement::FirstTouch;
    bool migrateOnPromote = false;
    std::uint16_t remoteClientId = 0;
    /** @} */

    PageTable pt;

    /** VMAs keyed by start address. */
    std::map<Addr, Vma> regions;

    /** Reverse map: base-page frame -> vpn (for migrate/evict). */
    std::unordered_map<mem::FrameNum, std::uint64_t> rmap;

    /** Bump-pointer virtual address allocator. */
    Addr nextMmapBase;

    /**
     * Address hull of all file-backed VMAs, so the present-page hot
     * path can skip the VMA lookup entirely when no file mappings
     * exist (the in-core case: one always-false compare).
     */
    Addr fileLo = ~0ull;
    Addr fileHi = 0;

    std::vector<TlbInvalidation> pendingInvalidations;
};

} // namespace gpsm::vm

#endif // GPSM_VM_ADDRESS_SPACE_HH
