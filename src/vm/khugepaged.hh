/**
 * @file
 * Background huge-page promotion daemon (khugepaged).
 */

#ifndef GPSM_VM_KHUGEPAGED_HH
#define GPSM_VM_KHUGEPAGED_HH

#include <cstdint>
#include <unordered_map>

#include "util/stats.hh"
#include "util/units.hh"

namespace gpsm::vm
{

class AddressSpace;

/**
 * Models Linux's khugepaged: a kernel thread that periodically scans a
 * bounded number of pages of the address space and collapses eligible
 * huge regions in the background.
 *
 * The simulation driver calls scan() at configured cycle intervals;
 * copy work is reported back so callers may charge it to a background
 * budget (it does not block the faulting application, matching §2.3.1).
 */
class Khugepaged
{
  public:
    explicit Khugepaged(AddressSpace &target) : space(target) {}

    struct ScanResult
    {
        std::uint64_t regionsScanned = 0;
        std::uint64_t promoted = 0;
        std::uint64_t copiedPages = 0;
    };

    /**
     * Scan up to @p page_budget base pages worth of address space from
     * the saved cursor, promoting eligible huge regions.
     */
    ScanResult scan(std::uint64_t page_budget);

    /**
     * Access-tracking variant (HawkEye-style): spend the budget on the
     * *hottest* regions first, ranked by observed page-walk counts
     * (@p heat, keyed by huge-region VPN). Regions with no recorded
     * heat are skipped — the policy only acts on measured pain.
     */
    ScanResult scanHotFirst(
        std::uint64_t page_budget,
        const std::unordered_map<std::uint64_t, std::uint32_t> &heat);

    Counter regionsScanned;
    Counter regionsPromoted;

  private:
    AddressSpace &space;
    /** Resume cursor (virtual address of next region to scan). */
    Addr cursor = 0;
};

} // namespace gpsm::vm

#endif // GPSM_VM_KHUGEPAGED_HH
